// Package suites_test runs both simulated testers end-to-end through the
// IOCov pipeline and asserts the qualitative properties the paper's
// evaluation reports. The runs use a reduced scale; all assertions are about
// shape (who covers more, what stays untested), which is scale-invariant by
// construction.
package suites_test

import (
	"fmt"
	"sync"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/metrics"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/suites/xfstests"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

const testScale = 0.02

// Identical suite runs are deterministic, so tests share them via a cache
// keyed by (suite, scale, seed).
var (
	cacheMu sync.Mutex
	cache   = map[string]*coverage.Analyzer{}
)

func cachedRun(t *testing.T, key string, run func() (*coverage.Analyzer, error)) *coverage.Analyzer {
	t.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if an, ok := cache[key]; ok {
		return an
	}
	an, err := run()
	if err != nil {
		t.Fatal(err)
	}
	cache[key] = an
	return an
}

func runXfstests(t *testing.T, scale float64) *coverage.Analyzer {
	t.Helper()
	return cachedRun(t, fmt.Sprintf("xfs-%g", scale), func() (*coverage.Analyzer, error) {
		an := coverage.NewAnalyzer(coverage.DefaultOptions())
		filter, err := trace.NewFilter(`^/mnt/test(/|$)`)
		if err != nil {
			return nil, err
		}
		k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
			Sink: &trace.FilteringSink{F: filter, Next: an},
		})
		_, err = xfstests.Run(k, xfstests.Config{Scale: scale, Seed: 1, Noise: true})
		return an, err
	})
}

func runCrashmonkey(t *testing.T, scale float64) *coverage.Analyzer {
	t.Helper()
	return cachedRun(t, fmt.Sprintf("cm-%g", scale), func() (*coverage.Analyzer, error) {
		an := coverage.NewAnalyzer(coverage.DefaultOptions())
		filter, err := trace.NewFilter(`^/mnt/test(/|$)`)
		if err != nil {
			return nil, err
		}
		k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
			Sink: &trace.FilteringSink{F: filter, Next: an},
		})
		_, err = crashmonkey.Run(k, crashmonkey.Config{Scale: scale, Seed: 1, Noise: true})
		return an, err
	})
}

func TestXfstestsRuns(t *testing.T) {
	an := runXfstests(t, testScale)
	if an.Analyzed() == 0 {
		t.Fatal("no events analyzed")
	}
	// All 11 base syscalls observed.
	if got := len(an.Syscalls()); got != 11 {
		t.Errorf("syscalls observed = %d (%v), want 11", got, an.Syscalls())
	}
}

func TestCrashMonkeyRuns(t *testing.T) {
	an := runCrashmonkey(t, 1.0)
	if an.Analyzed() == 0 {
		t.Fatal("no events analyzed")
	}
	flags := an.Input("open", "flags")
	if flags == nil {
		t.Fatal("no open flag coverage")
	}
	// Full-scale CrashMonkey O_RDONLY is calibrated near the paper's 7,924.
	got := flags.Count("O_RDONLY")
	if got < 5000 || got > 12000 {
		t.Errorf("CrashMonkey O_RDONLY = %d, want ≈7.9k", got)
	}
}

// TestFigure2Shape: xfstests exceeds CrashMonkey on every open flag, and
// the untested flag sets match the design.
func TestFigure2Shape(t *testing.T) {
	xfs := runXfstests(t, testScale)
	cm := runCrashmonkey(t, testScale)
	xf := xfs.Input("open", "flags")
	cf := cm.Input("open", "flags")
	for _, label := range xf.Domain() {
		if xf.Count(label) < cf.Count(label) {
			t.Errorf("flag %s: xfstests %d < crashmonkey %d", label, xf.Count(label), cf.Count(label))
		}
	}
	// Flags untested by BOTH suites (the paper's actionable finding; e.g.
	// O_LARGEFILE, whose untestedness hid a real XFS bug [62]).
	for _, label := range []string{"O_LARGEFILE", "O_NOCTTY", "O_ASYNC", "O_NOATIME", "O_PATH", "O_TMPFILE"} {
		if xf.Count(label) != 0 {
			t.Errorf("xfstests unexpectedly tests %s", label)
		}
		if cf.Count(label) != 0 {
			t.Errorf("crashmonkey unexpectedly tests %s", label)
		}
	}
	// CrashMonkey additionally skips flags xfstests covers.
	for _, label := range []string{"O_EXCL", "O_NONBLOCK", "O_CLOEXEC", "O_NOFOLLOW", "O_DSYNC"} {
		if xf.Count(label) == 0 {
			t.Errorf("xfstests misses %s", label)
		}
		if cf.Count(label) != 0 {
			t.Errorf("crashmonkey unexpectedly tests %s", label)
		}
	}
}

// TestTable1Shape: combination-size percentages approximate the paper's.
func TestTable1Shape(t *testing.T) {
	within := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	xfs := runXfstests(t, testScale)
	rows := xfs.ComboTable(6)
	wantAll := []float64{6.1, 28.2, 18.2, 46.8, 0.5, 0.4}
	wantRd := []float64{6.0, 30.8, 10.5, 51.9, 0.5, 0.3}
	for k := 0; k < 6; k++ {
		if !within(rows[0].Pct[k], wantAll[k], 4.0) {
			t.Errorf("xfstests all-flags %d-combo = %.1f%%, paper %.1f%%", k+1, rows[0].Pct[k], wantAll[k])
		}
		if !within(rows[1].Pct[k], wantRd[k], 4.0) {
			t.Errorf("xfstests O_RDONLY %d-combo = %.1f%%, paper %.1f%%", k+1, rows[1].Pct[k], wantRd[k])
		}
	}
	if xfs.MaxComboSize() != 6 {
		t.Errorf("xfstests max combo = %d, want 6", xfs.MaxComboSize())
	}

	cm := runCrashmonkey(t, 1.0)
	rows = cm.ComboTable(6)
	wantAll = []float64{9.3, 2.8, 22.1, 65.4, 0.5, 0}
	for k := 0; k < 6; k++ {
		if !within(rows[0].Pct[k], wantAll[k], 4.0) {
			t.Errorf("crashmonkey all-flags %d-combo = %.1f%%, paper %.1f%%", k+1, rows[0].Pct[k], wantAll[k])
		}
	}
	if cm.MaxComboSize() > 5 {
		t.Errorf("crashmonkey max combo = %d, want ≤5", cm.MaxComboSize())
	}
	// In both suites 4-flag combinations are the most common (paper: "using
	// four flags was the most common").
	for _, an := range []*coverage.Analyzer{xfs, cm} {
		rows := an.ComboTable(6)
		best := 0
		for k, pct := range rows[0].Pct {
			if pct > rows[0].Pct[best] {
				best = k
			}
		}
		if best != 3 {
			t.Errorf("most common combo size = %d flags, want 4", best+1)
		}
	}
}

// TestFigure3Shape: write sizes — xfstests ≥ CrashMonkey in every bucket,
// xfstests covers 0..2^28 and nothing beyond, CrashMonkey only small sizes.
func TestFigure3Shape(t *testing.T) {
	xfs := runXfstests(t, testScale)
	cm := runCrashmonkey(t, testScale)
	xw := xfs.Input("write", "count")
	cw := cm.Input("write", "count")
	for _, label := range xw.Domain() {
		if xw.Count(label) < cw.Count(label) {
			t.Errorf("bucket %s: xfstests %d < crashmonkey %d", label, xw.Count(label), cw.Count(label))
		}
	}
	// xfstests tests the zero-size boundary; CrashMonkey does not.
	if xw.Count("=0") == 0 {
		t.Error("xfstests missed the zero-size write boundary")
	}
	if cw.Count("=0") != 0 {
		t.Error("crashmonkey unexpectedly tests zero-size writes")
	}
	// Nothing above 2^28 for either suite (paper: max 258 MiB, no suite
	// tests the sizes 64-bit systems allow).
	for k := 29; k <= 63; k++ {
		label := "2^" + itoa(k)
		if xw.Count(label) != 0 || cw.Count(label) != 0 {
			t.Errorf("bucket %s tested; paper reports nothing above 258 MiB", label)
		}
	}
	// CrashMonkey stops at 2^16.
	for k := 17; k <= 28; k++ {
		if cw.Count("2^"+itoa(k)) != 0 {
			t.Errorf("crashmonkey bucket 2^%d tested, want 0", k)
		}
	}
}

// TestFigure4Shape: open output coverage — xfstests covers more errnos than
// CrashMonkey except ENOTDIR.
func TestFigure4Shape(t *testing.T) {
	xfs := runXfstests(t, testScale)
	cm := runCrashmonkey(t, testScale)
	xo := xfs.OutputReport("open")
	co := cm.OutputReport("open")
	if xo.Covered() <= co.Covered() {
		t.Errorf("xfstests covers %d open outputs, crashmonkey %d; want more", xo.Covered(), co.Covered())
	}
	xc := xfs.Output("open")
	cc := cm.Output("open")
	if cc.Count("ENOTDIR") <= xc.Count("ENOTDIR") {
		t.Errorf("ENOTDIR: crashmonkey %d <= xfstests %d; paper reports the opposite",
			cc.Count("ENOTDIR"), xc.Count("ENOTDIR"))
	}
	// Errnos both suites leave untested (hard-to-trigger states).
	for _, errname := range []string{"ENOMEM", "ENODEV", "ENXIO", "EDQUOT", "ETXTBSY", "EXDEV", "E2BIG", "EFAULT", "EINTR"} {
		if xc.Count(errname) != 0 || cc.Count(errname) != 0 {
			t.Errorf("errno %s unexpectedly triggered", errname)
		}
	}
	// xfstests' deliberate error tests reach these.
	for _, errname := range []string{"ENOENT", "EEXIST", "EISDIR", "ENOTDIR", "EACCES", "ELOOP", "ENAMETOOLONG", "EMFILE", "EROFS", "EINVAL"} {
		if xc.Count(errname) == 0 {
			t.Errorf("xfstests misses open errno %s", errname)
		}
	}
}

// TestFigure5Shape: the TCD crossover — CrashMonkey better at small
// targets, xfstests better at large, crossing in the thousands.
func TestFigure5Shape(t *testing.T) {
	// Run both at the same scale so magnitudes are comparable the way the
	// paper's full runs are.
	xfs := runXfstests(t, 0.05)
	cm := runCrashmonkey(t, 0.05)
	xf := xfs.InputReport("open", "flags").Frequencies()
	cf := cm.InputReport("open", "flags").Frequencies()
	if metrics.UniformTCD(cf, 1) >= metrics.UniformTCD(xf, 1) {
		t.Error("at target 1 CrashMonkey should have lower TCD")
	}
	if metrics.UniformTCD(cf, 100_000_000) <= metrics.UniformTCD(xf, 100_000_000) {
		t.Error("at target 100M xfstests should have lower TCD")
	}
	cross, found := metrics.Crossover(cf, xf, 100_000_000)
	if !found {
		t.Fatal("no TCD crossover found")
	}
	if cross < 10 || cross > 10_000_000 {
		t.Errorf("crossover at %d, expected within (10, 10M)", cross)
	}
	t.Logf("TCD crossover at target %d (paper, full scale: ≈5,237)", cross)
}

// TestDeterminism: equal seeds produce identical coverage. Runs bypass the
// cache so two independent executions are actually compared.
func TestDeterminism(t *testing.T) {
	fresh := func() *coverage.Analyzer {
		an := coverage.NewAnalyzer(coverage.DefaultOptions())
		k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: an})
		if _, err := crashmonkey.Run(k, crashmonkey.Config{Scale: 0.05, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		return an
	}
	a := fresh()
	b := fresh()
	fa := a.InputReport("open", "flags").Frequencies()
	fb := b.InputReport("open", "flags").Frequencies()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("coverage differs at %d: %d vs %d", i, fa[i], fb[i])
		}
	}
}

// TestFilterDropsNoise: the bookkeeping syscalls outside /mnt/test never
// reach the analyzer.
func TestFilterDropsNoise(t *testing.T) {
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	filter, _ := trace.NewFilter(`^/mnt/test(/|$)`)
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
		Sink: &trace.FilteringSink{F: filter, Next: an},
	})
	if _, err := crashmonkey.Run(k, crashmonkey.Config{Scale: 0.05, Seed: 3, Noise: true}); err != nil {
		t.Fatal(err)
	}
	_, dropped := filter.Stats()
	if dropped == 0 {
		t.Error("filter dropped nothing despite noise")
	}
	// No pool path outside the mount can appear in identifier tracking —
	// approximate by checking the analyzer saw fewer events than the raw
	// kernel emitted.
	kept, _ := filter.Stats()
	if an.Analyzed()+an.Skipped() != kept {
		t.Errorf("analyzer saw %d events, filter kept %d", an.Analyzed()+an.Skipped(), kept)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
