// Package workload provides the shared machinery of the simulated test
// suites: deterministic weighted choice, the bucketed size distributions
// used to calibrate write/read/xattr sizes against the paper's figures, and
// small helpers for driving the simulated kernel.
package workload

import (
	"math/rand"
	"sync"
)

// WeightedFlags is a distribution over open-flag words. Weights are
// relative; they do not need to sum to anything in particular.
type WeightedFlags struct {
	entries []flagEntry
	total   float64
}

type flagEntry struct {
	flags  int
	weight float64
	cum    float64
}

// NewWeightedFlags builds the distribution from (flags, weight) pairs.
func NewWeightedFlags(pairs []FlagWeight) *WeightedFlags {
	w := &WeightedFlags{}
	for _, p := range pairs {
		if p.Weight <= 0 {
			continue
		}
		w.total += p.Weight
		w.entries = append(w.entries, flagEntry{flags: p.Flags, weight: p.Weight, cum: w.total})
	}
	return w
}

// FlagWeight is one (flags word, relative weight) pair.
type FlagWeight struct {
	Flags  int
	Weight float64
}

// Pick draws one flags word.
func (w *WeightedFlags) Pick(r *rand.Rand) int {
	if len(w.entries) == 0 {
		return 0
	}
	x := r.Float64() * w.total
	lo, hi := 0, len(w.entries)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.entries[mid].cum < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return w.entries[lo].flags
}

// Entries exposes the distribution's support, for tests.
func (w *WeightedFlags) Entries() []FlagWeight {
	out := make([]FlagWeight, len(w.entries))
	for i, e := range w.entries {
		out[i] = FlagWeight{Flags: e.flags, Weight: e.weight}
	}
	return out
}

// BucketWeight assigns a relative weight to one power-of-two size bucket.
// Bucket -1 is the "size equals zero" boundary partition.
type BucketWeight struct {
	Bucket int
	Weight float64
}

// SizeDist is a distribution over power-of-two size buckets. Drawing first
// picks a bucket by weight, then a uniform size within [2^k, 2^(k+1)), so
// the resulting trace lands in exactly the paper's input partitions.
type SizeDist struct {
	entries []sizeEntry
	total   float64
	// Cap bounds the drawn size (the paper annotates xfstests' maximum
	// write at 258 MiB); zero means no cap.
	Cap int64
}

type sizeEntry struct {
	bucket int
	cum    float64
}

// NewSizeDist builds a size distribution.
func NewSizeDist(buckets []BucketWeight, cap int64) *SizeDist {
	d := &SizeDist{Cap: cap}
	for _, b := range buckets {
		if b.Weight <= 0 {
			continue
		}
		d.total += b.Weight
		d.entries = append(d.entries, sizeEntry{bucket: b.Bucket, cum: d.total})
	}
	return d
}

// Pick draws one size.
func (d *SizeDist) Pick(r *rand.Rand) int64 {
	if len(d.entries) == 0 {
		return 0
	}
	x := r.Float64() * d.total
	lo, hi := 0, len(d.entries)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.entries[mid].cum < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k := d.entries[lo].bucket
	if k < 0 {
		return 0
	}
	low := int64(1) << uint(k)
	size := low + r.Int63n(low) // uniform in [2^k, 2^(k+1))
	if d.Cap > 0 && size > d.Cap {
		size = d.Cap
	}
	return size
}

// Buckets exposes the support, for tests.
func (d *SizeDist) Buckets() []int {
	out := make([]int, len(d.entries))
	for i, e := range d.entries {
		out[i] = e.bucket
	}
	return out
}

// ScaleCount applies a scale factor to an op count, always keeping at least
// one op when the unscaled count is positive, so that scaled-down test runs
// still cover every partition the full run covers (just less often).
func ScaleCount(n int, scale float64) int {
	if n <= 0 {
		return 0
	}
	if scale >= 1 {
		return int(float64(n) * scale)
	}
	s := int(float64(n) * scale)
	if s < 1 {
		return 1
	}
	return s
}

// ItemSeed derives a decorrelated RNG seed for one work item of a suite
// run. Suites are decomposed into independent work items (one test, one
// storm chunk); each item draws from its own RNG seeded by (run seed, item
// index) so that the generated workload is a pure function of the item,
// independent of which shard executes it or how many shards exist. The
// mixing is the splitmix64 finalizer, so adjacent item indices yield
// decorrelated streams.
func ItemSeed(seed int64, item uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(item+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ItemRNG returns the RNG for one work item (see ItemSeed).
func ItemRNG(seed int64, item uint64) *rand.Rand {
	return rand.New(rand.NewSource(ItemSeed(seed, item)))
}

// ChunkRange splits n ops into `chunks` contiguous ranges and returns the
// half-open range [lo, hi) of chunk c. Ranges cover 0..n exactly and differ
// in size by at most one; a chunk can be empty when n < chunks.
func ChunkRange(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// SharedBuf hands out read-only slices of a zero-filled buffer so that
// large writes do not allocate per call. All SharedBufs share one
// process-wide arena: the suites' write payloads are all-zero by contract,
// so every runner — and every shard of a parallel run — can slice the same
// backing array. Before this sharing, each xfstests shard allocated its own
// 258 MiB buffer, which multiplied by the worker count into the dominant
// term of RunParallel's memory blowup.
//
// The returned slices are strictly read-only; writing through one would
// corrupt every concurrent user of the arena.
type SharedBuf struct {
	buf []byte
}

// zeroArena is the process-wide backing store. It only ever grows, and an
// installed arena is never written again, so concurrent readers may slice a
// previously returned arena without synchronization; the mutex serializes
// growth only.
var (
	zeroArenaMu sync.Mutex
	//iocov:shared-ok mutex-guarded grow-only cache of zero bytes; contents are identical regardless of shard interleaving
	zeroArena []byte
)

// NewSharedBuf returns a view of at least max bytes of the shared arena,
// growing it when a caller asks for more than any earlier caller did.
func NewSharedBuf(max int64) *SharedBuf {
	if max < 0 {
		max = 0
	}
	zeroArenaMu.Lock()
	if int64(len(zeroArena)) < max {
		zeroArena = make([]byte, max)
	}
	buf := zeroArena[:max]
	zeroArenaMu.Unlock()
	return &SharedBuf{buf: buf}
}

// Get returns an n-byte slice (n is clamped to the buffer size). The slice
// must be treated as read-only.
//
//iocov:hotpath
func (b *SharedBuf) Get(n int64) []byte {
	if n > int64(len(b.buf)) {
		n = int64(len(b.buf))
	}
	return b.buf[:n]
}
