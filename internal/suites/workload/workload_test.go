package workload

import (
	"math"
	"math/rand"
	"testing"

	"iocov/internal/sys"
)

func TestWeightedFlagsDistribution(t *testing.T) {
	w := NewWeightedFlags([]FlagWeight{
		{Flags: sys.O_RDONLY, Weight: 70},
		{Flags: sys.O_WRONLY, Weight: 20},
		{Flags: sys.O_RDWR, Weight: 10},
	})
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[w.Pick(rng)]++
	}
	within := func(got int, wantFrac float64) bool {
		return math.Abs(float64(got)/n-wantFrac) < 0.01
	}
	if !within(counts[sys.O_RDONLY], 0.70) || !within(counts[sys.O_WRONLY], 0.20) || !within(counts[sys.O_RDWR], 0.10) {
		t.Errorf("distribution = %v", counts)
	}
}

func TestWeightedFlagsSkipsNonPositive(t *testing.T) {
	w := NewWeightedFlags([]FlagWeight{
		{Flags: 1, Weight: 0},
		{Flags: 2, Weight: -5},
		{Flags: 3, Weight: 1},
	})
	if got := len(w.Entries()); got != 1 {
		t.Errorf("entries = %d, want 1", got)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if w.Pick(rng) != 3 {
			t.Fatal("picked a zero-weight entry")
		}
	}
}

func TestWeightedFlagsEmpty(t *testing.T) {
	w := NewWeightedFlags(nil)
	rng := rand.New(rand.NewSource(1))
	if w.Pick(rng) != 0 {
		t.Error("empty distribution should pick 0")
	}
}

func TestSizeDistBuckets(t *testing.T) {
	d := NewSizeDist([]BucketWeight{
		{Bucket: -1, Weight: 1},
		{Bucket: 4, Weight: 1},
		{Bucket: 10, Weight: 1},
	}, 0)
	rng := rand.New(rand.NewSource(2))
	sawZero, saw4, saw10 := false, false, false
	for i := 0; i < 10_000; i++ {
		v := d.Pick(rng)
		switch {
		case v == 0:
			sawZero = true
		case v >= 16 && v < 32:
			saw4 = true
		case v >= 1024 && v < 2048:
			saw10 = true
		default:
			t.Fatalf("size %d outside every configured bucket", v)
		}
	}
	if !sawZero || !saw4 || !saw10 {
		t.Errorf("buckets missed: zero=%v 4=%v 10=%v", sawZero, saw4, saw10)
	}
}

func TestSizeDistCap(t *testing.T) {
	d := NewSizeDist([]BucketWeight{{Bucket: 28, Weight: 1}}, 258<<20)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if v := d.Pick(rng); v > 258<<20 {
			t.Fatalf("size %d exceeds cap", v)
		}
	}
}

func TestSizeDistEmpty(t *testing.T) {
	d := NewSizeDist(nil, 0)
	rng := rand.New(rand.NewSource(1))
	if d.Pick(rng) != 0 {
		t.Error("empty dist should pick 0")
	}
}

func TestScaleCount(t *testing.T) {
	cases := []struct {
		n     int
		scale float64
		want  int
	}{
		{1000, 1.0, 1000},
		{1000, 0.5, 500},
		{1000, 2.0, 2000},
		{1000, 0.0001, 1}, // floor of 1 preserves coverage
		{0, 0.5, 0},
		{-5, 1.0, 0},
	}
	for _, c := range cases {
		if got := ScaleCount(c.n, c.scale); got != c.want {
			t.Errorf("ScaleCount(%d,%g) = %d, want %d", c.n, c.scale, got, c.want)
		}
	}
}

func TestItemSeedDecorrelated(t *testing.T) {
	// Distinct item indices must yield distinct seeds, and the same
	// (seed, item) pair must always yield the same seed.
	seen := map[int64]uint64{}
	for i := uint64(0); i < 10_000; i++ {
		s := ItemSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("ItemSeed collision: items %d and %d both -> %d", prev, i, s)
		}
		seen[s] = i
	}
	if ItemSeed(42, 7) != ItemSeed(42, 7) {
		t.Error("ItemSeed not deterministic")
	}
	if ItemSeed(42, 7) == ItemSeed(43, 7) {
		t.Error("ItemSeed ignores the run seed")
	}
}

func TestItemRNGDeterministic(t *testing.T) {
	a, b := ItemRNG(1, 5), ItemRNG(1, 5)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("ItemRNG streams diverge for the same item")
		}
	}
}

func TestChunkRange(t *testing.T) {
	for _, c := range []struct{ n, chunks int }{
		{100, 8}, {7, 8}, {0, 4}, {1, 1}, {16, 16}, {33, 8},
	} {
		covered := 0
		prevHi := 0
		for i := 0; i < c.chunks; i++ {
			lo, hi := ChunkRange(c.n, c.chunks, i)
			if lo != prevHi {
				t.Errorf("ChunkRange(%d,%d,%d): lo=%d, want %d (contiguous)", c.n, c.chunks, i, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("ChunkRange(%d,%d,%d): hi=%d < lo=%d", c.n, c.chunks, i, hi, lo)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != c.n || prevHi != c.n {
			t.Errorf("ChunkRange(%d,%d): covered %d ops ending at %d", c.n, c.chunks, covered, prevHi)
		}
	}
}

func TestSharedBuf(t *testing.T) {
	b := NewSharedBuf(1024)
	if got := len(b.Get(100)); got != 100 {
		t.Errorf("Get(100) len = %d", got)
	}
	if got := len(b.Get(4096)); got != 1024 {
		t.Errorf("Get over capacity len = %d, want clamp to 1024", got)
	}
	if got := len(b.Get(0)); got != 0 {
		t.Errorf("Get(0) len = %d", got)
	}
}
