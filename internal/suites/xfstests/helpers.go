package xfstests

import (
	"iocov/internal/kernel"
	"iocov/internal/vfs"
)

func kernelOpenHow(flags int, mode uint32, resolve int) kernel.OpenHow {
	return kernel.OpenHow{Flags: flags, Mode: mode, Resolve: resolve}
}

// kernelProcTight returns the options for the EMFILE-limit test process.
func kernelProcTight() kernel.ProcOptions {
	return kernel.ProcOptions{Cred: vfs.Root, MaxFDs: 16}
}

func vfsRoot() vfs.Cred { return vfs.Root }
