package xfstests

import (
	"fmt"

	"iocov/internal/suites/workload"
	"iocov/internal/sys"
)

// Each storm phase is split into a fixed number of chunks so the phase can
// be distributed over shards. Chunk counts are constants — they must not
// depend on the shard count, or the generated workload would change with
// the worker pool size. Every chunk is self-contained: it creates its own
// scratch files (chunk-scoped names), draws from its own item RNG, and
// cleans up before finishing.
const (
	chunksOpens     = 32
	chunksWrites    = 16
	chunksReads     = 16
	chunksLseeks    = 8
	chunksTruncates = 8
	chunksMkdirs    = 8
	chunksChmods    = 8
	chunksXattrs    = 8
)

// storm runs the distribution-driven bulk of the suite. The scenario
// templates (tests.go) give the run its error-path breadth; the storm gives
// it the paper's magnitudes: open-flag frequencies, Table 1 combination
// percentages, and the Figure 3 write-size profile all emerge from the
// weights in xfstests.go.
func (r *runner) storm() {
	r.stormPhase(chunksOpens, workload.ScaleCount(stormOpens, r.cfg.Scale), r.stormOpens)
	r.stormPhase(chunksWrites, workload.ScaleCount(stormWrites, r.cfg.Scale), r.stormWrites)
	r.stormPhase(chunksReads, workload.ScaleCount(stormReads, r.cfg.Scale), r.stormReads)
	r.stormPhase(chunksLseeks, workload.ScaleCount(stormLseeks, r.cfg.Scale), r.stormLseeks)
	r.stormPhase(chunksTruncates, workload.ScaleCount(stormTruncates, r.cfg.Scale), r.stormTruncates)
	r.stormPhase(chunksMkdirs, workload.ScaleCount(stormMkdirs, r.cfg.Scale), r.stormMkdirs)
	r.stormPhase(chunksChmods, workload.ScaleCount(stormChmods, r.cfg.Scale), r.stormChmods)
	// The xattr phase interleaves two op budgets (sets then gets), so its
	// chunks are dispatched explicitly with both ranges.
	nset := workload.ScaleCount(stormSetxattrs, r.cfg.Scale)
	nget := workload.ScaleCount(stormGetxattrs, r.cfg.Scale)
	for c := 0; c < chunksXattrs; c++ {
		slo, shi := workload.ChunkRange(nset, chunksXattrs, c)
		glo, ghi := workload.ChunkRange(nget, chunksXattrs, c)
		if slo >= shi && glo >= ghi {
			continue
		}
		r.item(func() { r.stormXattrs(c, slo, shi, glo, ghi) })
	}
}

// stormPhase dispatches one phase's op budget as chunk work items. Empty
// chunks (n < chunks) are skipped before item assignment; emptiness depends
// only on (n, chunks, c), so the item enumeration stays shard-invariant.
func (r *runner) stormPhase(chunks, n int, fn func(c, lo, hi int)) {
	for c := 0; c < chunks; c++ {
		lo, hi := workload.ChunkRange(n, chunks, c)
		if lo >= hi {
			continue
		}
		r.item(func() { fn(c, lo, hi) })
	}
}

func (r *runner) stormOpens(c, lo, hi int) {
	p := r.root
	combos := workload.NewWeightedFlags(openCombos)
	for i := lo; i < hi; i++ {
		flags := combos.Pick(r.rng)
		var path string
		excl := flags&sys.O_EXCL != 0
		switch {
		case flags&sys.O_DIRECTORY != 0:
			path = r.poolDirs[r.rng.Intn(len(r.poolDirs))]
		case excl:
			// The global op index keeps exclusive-create names unique
			// across chunks.
			path = fmt.Sprintf("%s/excl-%d", r.mnt, i)
		default:
			path = r.poolFiles[r.rng.Intn(len(r.poolFiles))]
		}
		var fd int
		var e sys.Errno
		switch v := r.rng.Intn(100); {
		case v < 70:
			fd, e = p.Open(path, flags, 0o644)
		case v < 95:
			fd, e = p.Openat(sys.AT_FDCWD, path, flags, 0o644)
		case v < 99:
			fd, e = p.Openat2(sys.AT_FDCWD, path, kernelOpenHow(flags, 0o644, 0))
		default:
			// creat carries no flags word, so it contributes to output
			// coverage and variant merging without touching Table 1.
			fd, e = p.Creat(fmt.Sprintf("%s/creat-%d", r.mnt, i), 0o644)
			if e == sys.OK {
				r.check(p.Close(fd))
				r.check(p.Unlink(fmt.Sprintf("%s/creat-%d", r.mnt, i)))
			} else {
				r.check(e)
			}
			continue
		}
		r.check(e)
		if e == sys.OK {
			r.check(p.Close(fd))
			if excl {
				r.check(p.Unlink(path))
			}
		}
	}
}

func (r *runner) stormWrites(c, lo, hi int) {
	p := r.root
	dist := workload.NewSizeDist(writeSizes, MaxWriteSize)
	small := fmt.Sprintf("%s/storm-w-c%02d", r.mnt, c)
	big := fmt.Sprintf("%s/storm-wbig-c%02d", r.mnt, c)
	sfd, e := p.Open(small, sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, 0o644)
	r.check(e)
	bfd, e2 := p.Open(big, sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, 0o644)
	r.check(e2)
	if e != sys.OK || e2 != sys.OK {
		return
	}
	const smallLimit = 4 << 20 // rotate the sequential file at 4 MiB
	var pos int64
	for i := lo; i < hi; i++ {
		size := dist.Pick(r.rng)
		switch {
		case size > smallLimit:
			// Big writes land at offset 0 of the dedicated file so the
			// filesystem footprint stays bounded at one max-size extent.
			_, we := p.Pwrite64(bfd, r.buf.Get(size), 0)
			r.check(we)
		case r.rng.Intn(100) < 8:
			_, we := p.Pwrite64(sfd, r.buf.Get(size), int64(r.rng.Intn(smallLimit)))
			r.check(we)
		case r.rng.Intn(100) < 5 && size >= 2:
			half := size / 2
			_, we := p.Writev(sfd, [][]byte{r.buf.Get(half), r.buf.Get(size - half)})
			r.check(we)
			pos += size
		default:
			_, we := p.Write(sfd, r.buf.Get(size))
			r.check(we)
			pos += size
		}
		if pos > smallLimit {
			_, se := p.Lseek(sfd, 0, sys.SEEK_SET)
			r.check(se)
			pos = 0
		}
	}
	r.check(p.Close(sfd))
	r.check(p.Close(bfd))
	r.check(p.Unlink(small))
	r.check(p.Unlink(big))
}

func (r *runner) stormReads(c, lo, hi int) {
	p := r.root
	dist := workload.NewSizeDist(readSizes, 1<<20)
	f := fmt.Sprintf("%s/storm-r-c%02d", r.mnt, c)
	wfd, e := p.Open(f, sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	const fileSize = 1 << 20
	_, we := p.Write(wfd, r.buf.Get(fileSize))
	r.check(we)
	r.check(p.Close(wfd))
	fd, e := p.Open(f, sys.O_RDONLY, 0)
	r.check(e)
	if e != sys.OK {
		return
	}
	rbuf := make([]byte, 1<<20)
	var pos int64
	for i := lo; i < hi; i++ {
		size := dist.Pick(r.rng)
		switch v := r.rng.Intn(100); {
		case v < 15:
			_, re := p.Pread64(fd, rbuf[:size], int64(r.rng.Intn(fileSize)))
			r.check(re)
		case v < 20 && size >= 2:
			half := size / 2
			_, re := p.Readv(fd, [][]byte{rbuf[:half], rbuf[half:size]})
			r.check(re)
			pos += size
		default:
			_, re := p.Read(fd, rbuf[:size])
			r.check(re)
			pos += size
		}
		if pos >= fileSize {
			_, se := p.Lseek(fd, 0, sys.SEEK_SET)
			r.check(se)
			pos = 0
		}
	}
	r.check(p.Close(fd))
	r.check(p.Unlink(f))
}

func (r *runner) stormLseeks(c, lo, hi int) {
	p := r.root
	f := fmt.Sprintf("%s/storm-s-c%02d", r.mnt, c)
	fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	_, we := p.Write(fd, r.buf.Get(1<<20))
	r.check(we)
	offsets := workload.NewSizeDist([]workload.BucketWeight{
		{Bucket: -1, Weight: 30}, {Bucket: 0, Weight: 4}, {Bucket: 4, Weight: 6},
		{Bucket: 9, Weight: 12}, {Bucket: 12, Weight: 20}, {Bucket: 16, Weight: 14},
		{Bucket: 19, Weight: 8}, {Bucket: 24, Weight: 3}, {Bucket: 30, Weight: 1},
	}, 0)
	for i := lo; i < hi; i++ {
		off := offsets.Pick(r.rng)
		var whence int
		switch v := r.rng.Intn(1000); {
		case v < 700:
			whence = sys.SEEK_SET
		case v < 850:
			whence = sys.SEEK_CUR
			if r.rng.Intn(4) == 0 {
				off = -off // negative relative seeks
			}
		case v < 950:
			whence = sys.SEEK_END
			off = -off // stay inside the file
		case v < 975:
			whence = sys.SEEK_DATA
		default:
			whence = sys.SEEK_HOLE
		}
		_, se := p.Lseek(fd, off, whence)
		r.check(se)
	}
	r.check(p.Close(fd))
	r.check(p.Unlink(f))
}

func (r *runner) stormTruncates(c, lo, hi int) {
	p := r.root
	dist := workload.NewSizeDist(truncLengths, 64<<20)
	f := fmt.Sprintf("%s/storm-t-c%02d", r.mnt, c)
	fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	for i := lo; i < hi; i++ {
		length := dist.Pick(r.rng)
		if r.rng.Intn(10) < 3 {
			r.check(p.Ftruncate(fd, length))
		} else {
			r.check(p.Truncate(f, length))
		}
	}
	r.check(p.Ftruncate(fd, 0))
	r.check(p.Close(fd))
	r.check(p.Unlink(f))
}

func (r *runner) stormMkdirs(c, lo, hi int) {
	p := r.root
	dir := func(j int) string {
		return fmt.Sprintf("%s/storm-d-c%02d-%03d", r.mnt, c, j%256)
	}
	n := hi - lo
	for j := 0; j < n; j++ {
		d := dir(j)
		mode := mkdirModes[r.rng.Intn(len(mkdirModes))]
		if r.rng.Intn(5) == 0 {
			r.check(p.Mkdirat(sys.AT_FDCWD, d, mode))
		} else {
			r.check(p.Mkdir(d, mode))
		}
		if j%256 >= 128 || r.rng.Intn(2) == 0 {
			r.check(p.Rmdir(d))
		}
	}
	// Sweep the chunk's name space so nothing leaks past the item.
	for j := 0; j < 256 && j < n; j++ {
		_ = p.Rmdir(dir(j))
	}
}

func (r *runner) stormChmods(c, lo, hi int) {
	p := r.root
	fd, e := p.Open(r.poolFiles[0], sys.O_RDWR, 0)
	r.check(e)
	for i := lo; i < hi; i++ {
		mode := chmodModes[r.rng.Intn(len(chmodModes))]
		target := r.poolFiles[r.rng.Intn(len(r.poolFiles))]
		switch v := r.rng.Intn(10); {
		case v < 6:
			r.check(p.Chmod(target, mode))
		case v < 8 && e == sys.OK:
			r.check(p.Fchmod(fd, mode))
		default:
			r.check(p.Fchmodat(sys.AT_FDCWD, target, mode, 0))
		}
	}
	if e == sys.OK {
		r.check(p.Close(fd))
	}
	// Restore pool permissions before the item ends, so no later item's
	// behavior can depend on which shard ran this chunk.
	for _, f := range r.poolFiles {
		r.check(p.Chmod(f, 0o666))
	}
}

func (r *runner) stormXattrs(c, slo, shi, glo, ghi int) {
	p := r.root
	dist := workload.NewSizeDist(xattrSizes, 60000)
	f := fmt.Sprintf("%s/storm-x-c%02d", r.mnt, c)
	link := fmt.Sprintf("%s/storm-xl-c%02d", r.mnt, c)
	fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	r.check(p.Symlink(f, link))
	for i := slo; i < shi; i++ {
		name := fmt.Sprintf("user.s%d", i%4)
		size := dist.Pick(r.rng)
		var flags int
		switch v := r.rng.Intn(10); {
		case v < 8:
			flags = 0
		case v < 9:
			flags = sys.XATTR_CREATE
		default:
			flags = sys.XATTR_REPLACE
		}
		switch v := r.rng.Intn(10); {
		case v < 7:
			r.check(p.Setxattr(f, name, r.buf.Get(size), flags))
		case v < 9:
			r.check(p.Fsetxattr(fd, name, r.buf.Get(size), flags))
		default:
			r.check(p.Lsetxattr(link, name, r.buf.Get(size), flags))
		}
	}
	gbuf := make([]byte, 1<<16)
	for i := glo; i < ghi; i++ {
		name := fmt.Sprintf("user.s%d", i%4)
		if r.rng.Intn(10) == 0 {
			name = "user.absent" // ENODATA path
		}
		size := dist.Pick(r.rng)
		if size > int64(len(gbuf)) {
			size = int64(len(gbuf))
		}
		switch v := r.rng.Intn(10); {
		case v < 7:
			_, ge := p.Getxattr(f, name, gbuf[:size])
			r.check(ge)
		case v < 9:
			_, ge := p.Fgetxattr(fd, name, gbuf[:size])
			r.check(ge)
		default:
			_, ge := p.Lgetxattr(link, name, gbuf[:size])
			r.check(ge)
		}
	}
	r.check(p.Close(fd))
	r.check(p.Unlink(link))
	r.check(p.Unlink(f))
}
