package xfstests

import (
	"fmt"
	"strings"

	"iocov/internal/sys"
)

// runTests executes the hand-written-style scenario templates: each of the
// 706 generic + 308 ext4 tests runs one template chosen round-robin. The
// templates are where the suite's deliberate error-path coverage comes from
// (Figure 4's breadth), alongside realistic regression sequences.
func (r *runner) runTests() {
	templates := []func(int){
		r.tmplCreateWriteRead,
		r.tmplErrorPathsOpen,
		r.tmplDirOps,
		r.tmplSeekFamily,
		r.tmplTruncateFamily,
		r.tmplXattrFamily,
		r.tmplPermissions,
		r.tmplSymlinks,
		r.tmplResourceLimits,
		r.tmplReadonlyMount,
		r.tmplBigFiles,
		r.tmplVectoredIO,
	}
	total := r.cfg.GenericTests + r.cfg.FSTests
	// At small scales run a subset of tests, but never fewer than one pass
	// over every template so coverage stays complete.
	n := total
	if r.cfg.Scale < 1 {
		n = int(float64(total) * r.cfg.Scale)
		if n < len(templates) {
			n = len(templates)
		}
	}
	for i := 0; i < n; i++ {
		r.item(func() {
			templates[i%len(templates)](i)
			r.stats.Tests++
		})
	}
}

// dir returns a per-test scratch directory.
func (r *runner) testDir(i int) string {
	d := fmt.Sprintf("%s/t%04d", r.mnt, i)
	r.check(r.root.Mkdir(d, 0o777))
	return d
}

func (r *runner) rmTestDir(d string) {
	// Best-effort recursive cleanup of the flat per-test directory.
	names, e := r.k.FS().ReadDir(r.k.FS().Root(), vfsRoot(), d)
	if e == sys.OK {
		for _, n := range names {
			p := d + "/" + n
			if st, e := r.root.Lstat(p); e == sys.OK && st.Type.String() == "dir" {
				_ = r.root.Rmdir(p)
			} else {
				_ = r.root.Unlink(p)
			}
		}
	}
	_ = r.root.Rmdir(d)
}

// tmplCreateWriteRead is the classic data-integrity regression: create,
// write a pattern at several offsets and sizes, read it back.
func (r *runner) tmplCreateWriteRead(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	f := d + "/data"
	fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR|sys.O_TRUNC, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	for j := 0; j < 8; j++ {
		size := int64(1) << uint(r.rng.Intn(14))
		_, we := p.Write(fd, r.buf.Get(size))
		r.check(we)
	}
	_, e = p.Lseek(fd, 0, sys.SEEK_SET)
	r.check(e)
	rb := make([]byte, 8192)
	for {
		n, e := p.Read(fd, rb)
		r.check(e)
		if e != sys.OK || n == 0 {
			break
		}
	}
	r.check(p.Close(fd))
	// Reopen read-only and spot-check with pread.
	fd, e = p.Open(f, sys.O_RDONLY, 0)
	r.check(e)
	if e == sys.OK {
		_, pe := p.Pread64(fd, rb[:512], 1024)
		r.check(pe)
		r.check(p.Close(fd))
	}
}

// tmplErrorPathsOpen deliberately walks open's documented failure modes.
func (r *runner) tmplErrorPathsOpen(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	// ENOENT: open a missing file.
	_, e := p.Open(d+"/missing", sys.O_RDONLY, 0)
	r.check(e)
	// EEXIST: exclusive create of an existing file.
	fd, e := p.Open(d+"/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	r.check(e)
	if e == sys.OK {
		r.check(p.Close(fd))
	}
	_, e = p.Open(d+"/f", sys.O_CREAT|sys.O_EXCL|sys.O_WRONLY, 0o644)
	r.check(e)
	// EISDIR: write-open a directory.
	_, e = p.Open(d, sys.O_WRONLY, 0)
	r.check(e)
	// ENOTDIR: path through a regular file, and O_DIRECTORY on a file.
	_, e = p.Open(d+"/f/sub", sys.O_RDONLY, 0)
	r.check(e)
	_, e = p.Open(d+"/f", sys.O_RDONLY|sys.O_DIRECTORY, 0)
	r.check(e)
	// EINVAL: contradictory access mode.
	_, e = p.Open(d+"/f", sys.O_ACCMODE, 0)
	r.check(e)
	// ENAMETOOLONG: a 300-byte component.
	_, e = p.Open(d+"/"+strings.Repeat("x", 300), sys.O_CREAT|sys.O_WRONLY, 0o644)
	r.check(e)
}

// tmplDirOps exercises mkdir/mkdirat and directory errno paths.
func (r *runner) tmplDirOps(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	r.check(p.Mkdir(d+"/sub", mkdirModes[i%len(mkdirModes)]))
	// EEXIST and ENOENT paths.
	r.check(p.Mkdir(d+"/sub", 0o755))
	r.check(p.Mkdir(d+"/no/such/parent", 0o755))
	// mkdirat relative to an open directory fd.
	dfd, e := p.Open(d, sys.O_RDONLY|sys.O_DIRECTORY, 0)
	r.check(e)
	if e == sys.OK {
		r.check(p.Mkdirat(dfd, "atdir", 0o700))
		r.check(p.Fchdir(dfd))
		r.check(p.Chdir("/"))
		r.check(p.Close(dfd))
	}
	// chdir into the tree and back; ENOTDIR on a file.
	r.check(p.Chdir(d + "/sub"))
	r.check(p.Chdir("/"))
	fd, e := p.Open(d+"/plain", sys.O_CREAT|sys.O_WRONLY, 0o644)
	r.check(e)
	if e == sys.OK {
		r.check(p.Close(fd))
	}
	r.check(p.Chdir(d + "/plain"))
	_ = p.Rmdir(d + "/sub/atdir")
	_ = p.Rmdir(d + "/sub")
	_ = p.Rmdir(d + "/atdir")
}

// tmplSeekFamily covers every whence value and lseek's errno paths.
func (r *runner) tmplSeekFamily(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	fd, e := p.Open(d+"/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	_, we := p.Write(fd, r.buf.Get(64*1024))
	r.check(we)
	for _, w := range []int{sys.SEEK_SET, sys.SEEK_CUR, sys.SEEK_END, sys.SEEK_DATA, sys.SEEK_HOLE} {
		_, e := p.Lseek(fd, int64(r.rng.Intn(32*1024)), w)
		r.check(e)
	}
	// Negative offsets: legal with SEEK_END, EINVAL when the result is
	// negative with SEEK_SET.
	_, e = p.Lseek(fd, -4096, sys.SEEK_END)
	r.check(e)
	_, e = p.Lseek(fd, -1, sys.SEEK_SET)
	r.check(e)
	// ENXIO: SEEK_DATA beyond EOF; EINVAL: bad whence; EBADF.
	_, e = p.Lseek(fd, 1<<20, sys.SEEK_DATA)
	r.check(e)
	_, e = p.Lseek(fd, 0, 42)
	r.check(e)
	r.check(p.Close(fd))
	_, e = p.Lseek(fd, 0, sys.SEEK_SET)
	r.check(e)
}

// tmplTruncateFamily covers truncate/ftruncate including EFBIG and ENOSPC.
func (r *runner) tmplTruncateFamily(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	f := d + "/t"
	fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	_, we := p.Write(fd, r.buf.Get(1<<16))
	r.check(we)
	r.check(p.Truncate(f, 1<<10))
	r.check(p.Ftruncate(fd, 0))
	r.check(p.Truncate(f, 1<<20)) // grow sparse
	// EINVAL: negative length. EFBIG: beyond max file size.
	r.check(p.Truncate(f, -1))
	r.check(p.Truncate(f, 64<<40))
	// Sparse expansion beyond device capacity succeeds (holes are not
	// allocated); restore afterwards.
	r.check(p.Truncate(f, r.k.FS().Config().CapacityBytes*2))
	r.check(p.Truncate(f, 0))
	// EISDIR and ENOENT paths.
	r.check(p.Truncate(d, 0))
	r.check(p.Truncate(d+"/none", 0))
	// ftruncate on read-only fd (EINVAL) and bad fd (EBADF).
	r.check(p.Close(fd))
	rfd, e := p.Open(f, sys.O_RDONLY, 0)
	r.check(e)
	if e == sys.OK {
		r.check(p.Ftruncate(rfd, 0))
		r.check(p.Close(rfd))
	}
	r.check(p.Ftruncate(999, 0))
}

// tmplXattrFamily covers all six xattr syscalls and their errno paths.
// Deliberately, the value sizes stop short of the exact maximum — that is
// the gap Figure 1's bug hides in.
func (r *runner) tmplXattrFamily(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	f := d + "/x"
	fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	r.check(p.Setxattr(f, "user.one", r.buf.Get(16), 0))
	r.check(p.Setxattr(f, "user.two", r.buf.Get(512), sys.XATTR_CREATE))
	r.check(p.Fsetxattr(fd, "user.three", r.buf.Get(2048), 0))
	// Replacement and its failure modes.
	r.check(p.Setxattr(f, "user.one", r.buf.Get(32), sys.XATTR_REPLACE))
	r.check(p.Setxattr(f, "user.one", nil, sys.XATTR_CREATE))   // EEXIST
	r.check(p.Setxattr(f, "user.none", nil, sys.XATTR_REPLACE)) // ENODATA
	r.check(p.Setxattr(f, "bogus.ns", r.buf.Get(8), 0))         // ENOTSUP
	r.check(p.Setxattr(f, "user.big", r.buf.Get(1<<20), 0))     // E2BIG
	buf := make([]byte, 4096)
	n, e := p.Getxattr(f, "user.two", buf)
	r.check(e)
	_ = n
	_, e = p.Getxattr(f, "user.two", nil) // size query
	r.check(e)
	_, e = p.Getxattr(f, "user.two", buf[:4]) // ERANGE
	r.check(e)
	_, e = p.Getxattr(f, "user.none", buf) // ENODATA
	r.check(e)
	_, e = p.Fgetxattr(fd, "user.three", buf)
	r.check(e)
	// Symlink-aware variants.
	r.check(p.Symlink(f, d+"/lx"))
	r.check(p.Lsetxattr(d+"/lx", "user.link", r.buf.Get(8), 0))
	_, e = p.Lgetxattr(d+"/lx", "user.link", buf)
	r.check(e)
	r.check(p.Close(fd))
}

// tmplPermissions drives chmod and the EACCES/EPERM paths with the
// unprivileged process.
func (r *runner) tmplPermissions(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	root, user := r.root, r.user
	f := d + "/secret"
	fd, e := root.Open(f, sys.O_CREAT|sys.O_WRONLY, 0o600)
	r.check(e)
	if e == sys.OK {
		r.check(root.Close(fd))
	}
	for _, m := range []uint32{0o600, 0, 0o4755, 0o1777, 0o444} {
		r.check(root.Chmod(f, m))
	}
	// Finish at 0600 root-owned: the unprivileged open must fail.
	r.check(root.Chmod(f, 0o600))
	_, e = user.Open(f, sys.O_RDONLY, 0)
	r.check(e) // EACCES
	// Unprivileged chmod of a root file: EPERM.
	r.check(user.Chmod(f, 0o777))
	// fchmod/fchmodat coverage.
	fd, e = root.Open(f, sys.O_RDWR, 0)
	r.check(e)
	if e == sys.OK {
		r.check(root.Fchmod(fd, 0o640))
		r.check(root.Close(fd))
	}
	r.check(root.Fchmodat(sys.AT_FDCWD, f, 0o644, 0))
	r.check(root.Fchmodat(sys.AT_FDCWD, f, 0o644, sys.AT_SYMLINK_NOFOLLOW)) // ENOTSUP
}

// tmplSymlinks covers symlink resolution, ELOOP, and openat2 resolve modes.
func (r *runner) tmplSymlinks(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	f := d + "/target"
	fd, e := p.Open(f, sys.O_CREAT|sys.O_WRONLY, 0o644)
	r.check(e)
	if e == sys.OK {
		r.check(p.Close(fd))
	}
	r.check(p.Symlink(f, d+"/ln"))
	fd, e = p.Open(d+"/ln", sys.O_RDONLY, 0)
	r.check(e)
	if e == sys.OK {
		r.check(p.Close(fd))
	}
	// O_NOFOLLOW on the link: ELOOP.
	_, e = p.Open(d+"/ln", sys.O_RDONLY|sys.O_NOFOLLOW, 0)
	r.check(e)
	// A two-link cycle: ELOOP by depth.
	r.check(p.Symlink(d+"/c2", d+"/c1"))
	r.check(p.Symlink(d+"/c1", d+"/c2"))
	_, e = p.Open(d+"/c1", sys.O_RDONLY, 0)
	r.check(e)
	// openat2 with RESOLVE_NO_SYMLINKS.
	_, e = p.Openat2(sys.AT_FDCWD, d+"/ln", kernelOpenHow(sys.O_RDONLY, 0, sys.RESOLVE_NO_SYMLINKS))
	r.check(e)
	fd, e = p.Openat2(sys.AT_FDCWD, f, kernelOpenHow(sys.O_RDONLY, 0, 0))
	r.check(e)
	if e == sys.OK {
		r.check(p.Close(fd))
	}
}

// tmplResourceLimits drives the descriptor-limit errnos (EMFILE) with a
// dedicated tight-limit process.
func (r *runner) tmplResourceLimits(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	tight := r.k.NewProc(kernelProcTight())
	var fds []int
	for j := 0; j < 20; j++ {
		f := fmt.Sprintf("%s/lim%02d", d, j)
		fd, e := tight.Open(f, sys.O_CREAT|sys.O_WRONLY, 0o644)
		r.check(e)
		if e == sys.OK {
			fds = append(fds, fd)
		}
	}
	for _, fd := range fds {
		r.check(tight.Close(fd))
	}
	// EBADF family on the main proc.
	_, e := r.root.Read(12345, make([]byte, 8))
	r.check(e)
	_, e = r.root.Write(12345, r.buf.Get(8))
	r.check(e)
	r.check(r.root.Close(12345))
}

// tmplReadonlyMount remounts read-only and exercises the EROFS paths.
func (r *runner) tmplReadonlyMount(i int) {
	d := r.testDir(i)
	p := r.root
	f := d + "/ro"
	fd, e := p.Open(f, sys.O_CREAT|sys.O_WRONLY, 0o644)
	r.check(e)
	if e == sys.OK {
		r.check(p.Close(fd))
	}
	fs := r.k.FS()
	fs.SetReadOnly(true)
	_, e = p.Open(d+"/new", sys.O_CREAT|sys.O_WRONLY, 0o644)
	r.check(e) // EROFS
	_, e = p.Open(f, sys.O_WRONLY, 0)
	r.check(e) // EROFS
	r.check(p.Mkdir(d+"/rodir", 0o755))
	r.check(p.Truncate(f, 0))
	r.check(p.Chmod(f, 0o600))
	r.check(p.Setxattr(f, "user.ro", nil, 0))
	fs.SetReadOnly(false)
	r.rmTestDir(d)
}

// tmplBigFiles covers the large-file boundary: EOVERFLOW without
// O_LARGEFILE is NOT exercised (the suite, like the real one per [62],
// leaves O_LARGEFILE untested) but large sparse files and big reads are.
func (r *runner) tmplBigFiles(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	f := d + "/big"
	fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	// Sparse file via a large seek + small write.
	_, se := p.Lseek(fd, 900<<20, sys.SEEK_SET)
	r.check(se)
	_, we := p.Write(fd, r.buf.Get(4096))
	r.check(we)
	// Read back across the hole.
	_, pe := p.Pread64(fd, make([]byte, 1<<16), 450<<20)
	r.check(pe)
	r.check(p.Ftruncate(fd, 0))
	r.check(p.Close(fd))
}

// tmplVectoredIO covers readv/writev.
func (r *runner) tmplVectoredIO(i int) {
	d := r.testDir(i)
	defer r.rmTestDir(d)
	p := r.root
	fd, e := p.Open(d+"/v", sys.O_CREAT|sys.O_RDWR, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	iovs := [][]byte{r.buf.Get(100), r.buf.Get(4096), r.buf.Get(13)}
	_, we := p.Writev(fd, iovs)
	r.check(we)
	_, se := p.Lseek(fd, 0, sys.SEEK_SET)
	r.check(se)
	rv := [][]byte{make([]byte, 50), make([]byte, 8192)}
	_, re := p.Readv(fd, rv)
	r.check(re)
	// Empty vector list: 0 bytes, success.
	_, we = p.Writev(fd, nil)
	r.check(we)
	r.check(p.Close(fd))
}
