// Package xfstests simulates the xfstests regression suite of the paper's
// evaluation: 706 generic tests plus 308 ext4-specific tests driving the
// simulated kernel under /mnt/test.
//
// The real xfstests is a corpus of hand-written shell/C tests accumulated
// over decades; what IOCov observes of it is the distribution of syscall
// inputs and outputs it produces. This simulator reproduces that
// distribution, calibrated against the paper's published numbers:
//
//   - open flags and flag-combination mix per Figure 2 and Table 1
//     (O_RDONLY ≈ 4.1M at full scale; 2-flag combos the second most common;
//     at most 6 flags; O_NOCTTY/O_ASYNC/O_LARGEFILE/O_NOATIME/O_PATH/
//     O_TMPFILE never used),
//   - write sizes per Figure 3 (every power-of-two bucket from 0 to 2^28,
//     maximum single write 258 MiB, nothing larger),
//   - open outputs per Figure 4 (a broad but incomplete errno set:
//     deliberate error-path tests trigger ENOENT, EEXIST, EISDIR, ENOTDIR,
//     EACCES, ELOOP, ENAMETOOLONG, EMFILE, EROFS, EINVAL, EOVERFLOW, while
//     ENOMEM, ENODEV, ENXIO, ETXTBSY, EDQUOT, ... stay untested).
//
// Tests are deterministic given Config.Seed.
package xfstests

import (
	"fmt"
	"math/rand"
	"strings"

	"iocov/internal/kernel"
	"iocov/internal/suites/workload"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// MaxWriteSize is the largest single write the suite issues: the 258 MiB
// maximum the paper annotates in Figure 3.
const MaxWriteSize = 258 << 20

// Config parameterizes a run.
type Config struct {
	// Scale multiplies every op count; 1.0 reproduces full-run magnitudes
	// (≈ 9M traced syscalls), smaller values keep the same coverage shape
	// with proportionally lower frequencies. Zero means 1.0.
	Scale float64
	// Seed drives all pseudo-random choices. Runs with equal seeds are
	// identical.
	Seed int64
	// MountPoint is the filesystem-under-test directory (default
	// "/mnt/test", as in real xfstests).
	MountPoint string
	// GenericTests and FSTests are the test counts (defaults 706 and 308,
	// the populations the paper ran).
	GenericTests int
	FSTests      int
	// Noise emits out-of-mount bookkeeping syscalls (test harness logs,
	// /tmp scratch) that the trace filter must discard. Enabled by
	// default-ish callers; zero value disables.
	Noise bool
	// Shard and Shards select a deterministic slice of the run's work
	// items for parallel execution. The suite is decomposed into
	// independent items (one scenario test, one storm chunk), each with
	// its own seed-derived RNG; item g runs iff g % Shards == Shard, so
	// the union of work over all shards is identical to a serial run
	// whatever the shard count. Zero Shards means 1 (run everything).
	Shard  int
	Shards int
}

// Stats summarizes a run.
type Stats struct {
	Tests    int
	Ops      int64
	Failures int64
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.MountPoint == "" {
		c.MountPoint = "/mnt/test"
	}
	if c.GenericTests <= 0 {
		c.GenericTests = 706
	}
	if c.FSTests <= 0 {
		c.FSTests = 308
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Full-scale op-storm counts, chosen so the headline magnitudes match the
// paper: stormOpens * P(O_RDONLY accmode) ≈ 0.60 * 6.85M ≈ 4.1M.
const (
	stormOpens     = 6_850_000
	stormWrites    = 1_500_000
	stormReads     = 900_000
	stormLseeks    = 400_000
	stormTruncates = 120_000
	stormMkdirs    = 90_000
	stormChmods    = 150_000
	stormSetxattrs = 60_000
	stormGetxattrs = 60_000
)

// openCombos encodes the Table 1 calibration: the all-row percentages
// {6.1, 28.2, 18.2, 46.8, 0.5, 0.4} split into O_RDONLY-containing and
// other combinations with an overall O_RDONLY share of 0.60, which yields
// the O_RDONLY-row percentages {6.0, 30.8, 10.5, 51.9, 0.5, 0.3}.
var openCombos = []workload.FlagWeight{
	// 1 flag (6.1%): rd 3.60, other 2.50
	{Flags: sys.O_RDONLY, Weight: 3.60},
	{Flags: sys.O_WRONLY, Weight: 1.50},
	{Flags: sys.O_RDWR, Weight: 1.00},
	// 2 flags (28.2%): rd 18.48, other 9.72
	{Flags: sys.O_RDONLY | sys.O_CLOEXEC, Weight: 10.00},
	{Flags: sys.O_RDONLY | sys.O_DIRECTORY, Weight: 5.48},
	{Flags: sys.O_RDONLY | sys.O_NONBLOCK, Weight: 3.00},
	{Flags: sys.O_WRONLY | sys.O_CREAT, Weight: 5.00},
	{Flags: sys.O_RDWR | sys.O_CREAT, Weight: 3.00},
	{Flags: sys.O_WRONLY | sys.O_APPEND, Weight: 1.00},
	{Flags: sys.O_WRONLY | sys.O_TRUNC, Weight: 0.72},
	// 3 flags (18.2%): rd 6.30, other 11.90
	{Flags: sys.O_RDONLY | sys.O_DIRECTORY | sys.O_CLOEXEC, Weight: 4.00},
	{Flags: sys.O_RDONLY | sys.O_NOFOLLOW | sys.O_CLOEXEC, Weight: 2.30},
	{Flags: sys.O_WRONLY | sys.O_CREAT | sys.O_TRUNC, Weight: 8.00},
	{Flags: sys.O_RDWR | sys.O_CREAT | sys.O_EXCL, Weight: 3.90},
	// 4 flags (46.8%): rd 31.14, other 15.66
	{Flags: sys.O_RDONLY | sys.O_CREAT | sys.O_NONBLOCK | sys.O_CLOEXEC, Weight: 20.00},
	{Flags: sys.O_RDONLY | sys.O_DIRECTORY | sys.O_NOFOLLOW | sys.O_CLOEXEC, Weight: 11.14},
	{Flags: sys.O_WRONLY | sys.O_CREAT | sys.O_TRUNC | sys.O_SYNC, Weight: 6.00},
	{Flags: sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC | sys.O_DSYNC, Weight: 5.00},
	{Flags: sys.O_RDWR | sys.O_CREAT | sys.O_EXCL | sys.O_DIRECT, Weight: 4.66},
	// 5 flags (0.5%): rd 0.30, other 0.20
	{Flags: sys.O_RDONLY | sys.O_CREAT | sys.O_EXCL | sys.O_NONBLOCK | sys.O_CLOEXEC, Weight: 0.30},
	{Flags: sys.O_WRONLY | sys.O_CREAT | sys.O_TRUNC | sys.O_DSYNC | sys.O_NOFOLLOW, Weight: 0.20},
	// 6 flags (0.4%): rd 0.18, other 0.22
	{Flags: sys.O_RDONLY | sys.O_CREAT | sys.O_EXCL | sys.O_NONBLOCK | sys.O_NOFOLLOW | sys.O_CLOEXEC, Weight: 0.18},
	{Flags: sys.O_RDWR | sys.O_CREAT | sys.O_EXCL | sys.O_TRUNC | sys.O_NONBLOCK | sys.O_CLOEXEC, Weight: 0.22},
}

// writeSizes covers every bucket Figure 3 shows for xfstests: "equal to 0"
// and 2^0 through 2^28, with frequency decaying roughly log-linearly from
// ~2M around page-sized writes down to single digits at the 258 MiB tail.
var writeSizes = []workload.BucketWeight{
	{Bucket: -1, Weight: 900}, // size 0, the POSIX boundary case
	{Bucket: 0, Weight: 21000}, {Bucket: 1, Weight: 16000},
	{Bucket: 2, Weight: 45000}, {Bucket: 3, Weight: 52000},
	{Bucket: 4, Weight: 60000}, {Bucket: 5, Weight: 70000},
	{Bucket: 6, Weight: 90000}, {Bucket: 7, Weight: 110000},
	{Bucket: 8, Weight: 140000}, {Bucket: 9, Weight: 170000},
	{Bucket: 10, Weight: 190000}, {Bucket: 11, Weight: 180000},
	{Bucket: 12, Weight: 210000}, {Bucket: 13, Weight: 90000},
	{Bucket: 14, Weight: 42000}, {Bucket: 15, Weight: 21000},
	{Bucket: 16, Weight: 11000}, {Bucket: 17, Weight: 5600},
	{Bucket: 18, Weight: 2800}, {Bucket: 19, Weight: 1400},
	{Bucket: 20, Weight: 700}, {Bucket: 21, Weight: 340},
	{Bucket: 22, Weight: 170}, {Bucket: 23, Weight: 80},
	{Bucket: 24, Weight: 40}, {Bucket: 25, Weight: 18},
	{Bucket: 26, Weight: 8}, {Bucket: 27, Weight: 4},
	{Bucket: 28, Weight: 2},
}

// readSizes has a similar profile, capped at 1 MiB buffers.
var readSizes = []workload.BucketWeight{
	{Bucket: -1, Weight: 300},
	{Bucket: 0, Weight: 9000}, {Bucket: 2, Weight: 17000},
	{Bucket: 4, Weight: 26000}, {Bucket: 6, Weight: 40000},
	{Bucket: 8, Weight: 70000}, {Bucket: 9, Weight: 110000},
	{Bucket: 10, Weight: 130000}, {Bucket: 12, Weight: 160000},
	{Bucket: 13, Weight: 60000}, {Bucket: 14, Weight: 26000},
	{Bucket: 16, Weight: 9000}, {Bucket: 18, Weight: 1800},
	{Bucket: 20, Weight: 400},
}

// xattrSizes spans the whole legal setxattr value range, including the
// empty value and the in-inode capacity region, but — deliberately, like
// the real suite per Figure 1's missed bug — not the exact maximum size.
var xattrSizes = []workload.BucketWeight{
	{Bucket: -1, Weight: 200},
	{Bucket: 2, Weight: 800}, {Bucket: 4, Weight: 2200},
	{Bucket: 6, Weight: 3600}, {Bucket: 8, Weight: 2600},
	{Bucket: 10, Weight: 1100}, {Bucket: 12, Weight: 320},
	{Bucket: 14, Weight: 60},
}

// truncLengths spans 0 to 64 MiB.
var truncLengths = []workload.BucketWeight{
	{Bucket: -1, Weight: 3000},
	{Bucket: 0, Weight: 900}, {Bucket: 6, Weight: 2600},
	{Bucket: 9, Weight: 4800}, {Bucket: 12, Weight: 8600},
	{Bucket: 14, Weight: 4200}, {Bucket: 16, Weight: 2100},
	{Bucket: 18, Weight: 900}, {Bucket: 20, Weight: 420},
	{Bucket: 22, Weight: 160}, {Bucket: 24, Weight: 70},
	{Bucket: 26, Weight: 20},
}

// chmodModes is the suite's palette of permission arguments, including the
// boundary values 0 and the setuid/setgid/sticky bits.
var chmodModes = []uint32{
	0o644, 0o600, 0o755, 0o700, 0o400, 0o444, 0o666, 0o777,
	0, 0o4755, 0o2755, 0o1777, 0o4000, 0o220, 0o111,
}

var mkdirModes = []uint32{0o755, 0o700, 0o777, 0o750, 0o711, 0o500}

// runner carries the per-run state.
type runner struct {
	cfg   Config
	k     *kernel.Kernel
	root  *kernel.Proc // root-credential process for setup
	user  *kernel.Proc // unprivileged process for permission tests
	rng   *rand.Rand
	buf   *workload.SharedBuf
	stats Stats

	mnt       string
	poolFiles []string
	poolDirs  []string

	// nextItem is the running work-item counter used for shard
	// assignment; it advances identically on every shard.
	nextItem int
}

// item runs fn as one deterministic work item. Items are enumerated in a
// fixed order by the running counter, assigned round-robin to shards, and
// each executes under an item-local RNG derived from (seed, item index) —
// so the union of generated workloads over all shards, and therefore the
// filtered trace reaching the analyzer, is independent of the shard count.
func (r *runner) item(fn func()) {
	g := r.nextItem
	r.nextItem++
	if g%r.cfg.Shards != r.cfg.Shard {
		return
	}
	r.rng = workload.ItemRNG(r.cfg.Seed, uint64(g))
	fn()
}

// Run executes the simulated suite against k. The kernel's filesystem must
// be writable and empty enough to host the mount point.
func Run(k *kernel.Kernel, cfg Config) (Stats, error) {
	cfg.fill()
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return Stats{}, fmt.Errorf("xfstests: shard %d out of range [0,%d)", cfg.Shard, cfg.Shards)
	}
	r := &runner{
		cfg:  cfg,
		k:    k,
		root: k.NewProc(kernel.ProcOptions{Cred: vfs.Root}),
		user: k.NewProc(kernel.ProcOptions{Cred: vfs.Cred{UID: 1000, GID: 1000}}),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		buf:  workload.NewSharedBuf(MaxWriteSize),
		mnt:  cfg.MountPoint,
	}
	// Setup runs untraced: every shard rebuilds the same mount point and
	// pools on its own filesystem, and those bookkeeping events must not
	// reach the analyzer once per shard when a serial run emits them once.
	sink := k.Sink()
	k.SetSink(nil)
	err := r.setup()
	k.SetSink(sink)
	if err != nil {
		return r.stats, err
	}
	if cfg.Noise {
		r.emitNoise()
	}
	r.runTests()
	r.storm()
	r.teardown()
	return r.stats, nil
}

// check tallies a syscall outcome.
func (r *runner) check(e sys.Errno) {
	r.stats.Ops++
	if e != sys.OK {
		r.stats.Failures++
	}
}

func (r *runner) setup() error {
	p := r.root
	// Build the mount point path component by component.
	parts := strings.Split(strings.Trim(r.mnt, "/"), "/")
	path := ""
	for _, c := range parts {
		path += "/" + c
		if e := p.Mkdir(path, 0o755); e != sys.OK && e != sys.EEXIST {
			return fmt.Errorf("xfstests: mkdir %s: %v", path, e)
		}
	}
	// World-writable mount so the unprivileged proc can create files too.
	if e := p.Chmod(r.mnt, 0o777); e != sys.OK {
		return fmt.Errorf("xfstests: chmod %s: %v", r.mnt, e)
	}
	// File and directory pools for the op storm.
	for i := 0; i < 64; i++ {
		f := fmt.Sprintf("%s/pool-f%02d", r.mnt, i)
		fd, e := p.Open(f, sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, 0o666)
		if e != sys.OK {
			return fmt.Errorf("xfstests: create %s: %v", f, e)
		}
		if _, e := p.Write(fd, r.buf.Get(4096)); e != sys.OK {
			return fmt.Errorf("xfstests: populate %s: %v", f, e)
		}
		r.check(p.Close(fd))
		r.poolFiles = append(r.poolFiles, f)
	}
	for i := 0; i < 16; i++ {
		d := fmt.Sprintf("%s/pool-d%02d", r.mnt, i)
		if e := p.Mkdir(d, 0o777); e != sys.OK {
			return fmt.Errorf("xfstests: mkdir %s: %v", d, e)
		}
		r.poolDirs = append(r.poolDirs, d)
	}
	return nil
}

// emitNoise issues the out-of-mount syscalls a real test harness produces
// (reading its config, writing logs); IOCov's trace filter must drop them.
func (r *runner) emitNoise() {
	p := r.root
	_ = p.Mkdir("/tmp", 0o777)
	_ = p.Mkdir("/var", 0o755)
	_ = p.Mkdir("/var/log", 0o755)
	for i := 0; i < workload.ScaleCount(200, r.cfg.Scale); i++ {
		fd, e := p.Open("/var/log/xfstests.log", sys.O_CREAT|sys.O_WRONLY|sys.O_APPEND, 0o644)
		if e == sys.OK {
			_, _ = p.Write(fd, r.buf.Get(128))
			_ = p.Close(fd)
		}
		fd, e = p.Open("/tmp/check.tmp", sys.O_CREAT|sys.O_RDWR|sys.O_TRUNC, 0o600)
		if e == sys.OK {
			_, _ = p.Write(fd, r.buf.Get(512))
			_ = p.Close(fd)
		}
	}
}

func (r *runner) teardown() {
	r.root.CloseAll()
	r.user.CloseAll()
}
