package xfstests

import (
	"math/rand"
	"testing"

	"iocov/internal/kernel"
	"iocov/internal/suites/workload"
	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

func newRunner(t *testing.T, scale float64) (*runner, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector()
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: col})
	cfg := Config{Scale: scale, Seed: 1}
	cfg.fill()
	r := &runner{
		cfg:  cfg,
		k:    k,
		root: k.NewProc(kernel.ProcOptions{Cred: vfs.Root}),
		user: k.NewProc(kernel.ProcOptions{Cred: vfs.Cred{UID: 1000, GID: 1000}}),
		rng:  newTestRng(),
		buf:  newTestBuf(),
		mnt:  cfg.MountPoint,
	}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	return r, col
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Scale != 1.0 || c.MountPoint != "/mnt/test" ||
		c.GenericTests != 706 || c.FSTests != 308 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestSetupCreatesPools(t *testing.T) {
	r, _ := newRunner(t, 0.01)
	if len(r.poolFiles) != 64 || len(r.poolDirs) != 16 {
		t.Errorf("pools = %d files, %d dirs", len(r.poolFiles), len(r.poolDirs))
	}
	if _, e := r.root.Stat(r.poolFiles[0]); e != sys.OK {
		t.Errorf("pool file missing: %v", e)
	}
}

// TestEachTemplateRunsClean: every scenario template must complete without
// panicking and leave the filesystem consistent.
func TestEachTemplateRunsClean(t *testing.T) {
	r, _ := newRunner(t, 0.01)
	templates := []func(int){
		r.tmplCreateWriteRead, r.tmplErrorPathsOpen, r.tmplDirOps,
		r.tmplSeekFamily, r.tmplTruncateFamily, r.tmplXattrFamily,
		r.tmplPermissions, r.tmplSymlinks, r.tmplResourceLimits,
		r.tmplReadonlyMount, r.tmplBigFiles, r.tmplVectoredIO,
	}
	for i, tmpl := range templates {
		tmpl(1000 + i)
	}
	if corruptions := r.k.FS().CheckConsistency(); len(corruptions) != 0 {
		t.Errorf("templates corrupted the fs: %v", corruptions)
	}
	// The read-only template must restore writability.
	if r.k.FS().Config().ReadOnly {
		t.Error("filesystem left read-only")
	}
	if e := r.root.Mkdir(r.mnt+"/post", 0o755); e != sys.OK {
		t.Errorf("fs not writable after templates: %v", e)
	}
}

// TestErrorTemplateProducesExpectedErrnos: the deliberate error-path
// template triggers exactly the Figure 4 error set it is designed for.
func TestErrorTemplateProducesExpectedErrnos(t *testing.T) {
	r, col := newRunner(t, 0.01)
	r.tmplErrorPathsOpen(0)
	got := map[string]bool{}
	for _, ev := range col.Events() {
		if ev.Name == "open" && ev.Failed() {
			got[ev.Err.Name()] = true
		}
	}
	for _, want := range []string{"ENOENT", "EEXIST", "EISDIR", "ENOTDIR", "EINVAL", "ENAMETOOLONG"} {
		if !got[want] {
			t.Errorf("error template missed %s (got %v)", want, got)
		}
	}
}

// TestStormBoundedFootprint: the op storm must not leak files or blocks.
func TestStormBoundedFootprint(t *testing.T) {
	r, _ := newRunner(t, 0.005)
	before := r.k.FS().UsedBlocks()
	r.storm()
	after := r.k.FS().UsedBlocks()
	// The pool files remain, plus bounded leftovers; nothing like the
	// storm's total write volume may stay allocated.
	if after > before+64*1024 { // 256 MiB worth of blocks
		t.Errorf("storm leaked blocks: %d -> %d", before, after)
	}
	if fds := len(r.root.OpenFDs()); fds > 4 {
		t.Errorf("storm leaked %d descriptors", fds)
	}
}

func TestRunSmall(t *testing.T) {
	col := trace.NewCollector()
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: col})
	stats, err := Run(k, Config{Scale: 0.005, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tests < 12 {
		t.Errorf("tests = %d, want at least one pass over every template", stats.Tests)
	}
	if stats.Ops == 0 || col.Len() == 0 {
		t.Error("no ops recorded")
	}
	// Failures happen (error templates) but are a minority.
	if stats.Failures*2 > stats.Ops {
		t.Errorf("failures %d out of %d ops", stats.Failures, stats.Ops)
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func newTestBuf() *workload.SharedBuf { return workload.NewSharedBuf(MaxWriteSize) }
