// Package sys defines the Linux x86-64 ABI constants that the simulated
// kernel, the tracer, and the IOCov analyzer share: errno values, open(2)
// flags, file mode bits, lseek whence values, and the AT_*/XATTR_* argument
// constants of the traced syscalls.
//
// The numeric values match the real Linux ABI so that traces produced by the
// simulated kernel partition exactly like traces captured on real hardware.
package sys

import "fmt"

// Errno is a Linux errno value. The zero value OK means success.
//
// Syscalls in this repository return Errno instead of error so that the
// kernel's exit paths stay faithful to the ABI: a traced syscall either
// succeeds with a non-negative return value or fails with exactly one errno.
type Errno int

// Errno values (Linux x86-64 generic numbers).
const (
	OK           Errno = 0
	EPERM        Errno = 1
	ENOENT       Errno = 2
	ESRCH        Errno = 3
	EINTR        Errno = 4
	EIO          Errno = 5
	ENXIO        Errno = 6
	E2BIG        Errno = 7
	EBADF        Errno = 9
	EAGAIN       Errno = 11
	ENOMEM       Errno = 12
	EACCES       Errno = 13
	EFAULT       Errno = 14
	EBUSY        Errno = 16
	EEXIST       Errno = 17
	EXDEV        Errno = 18
	ENODEV       Errno = 19
	ENOTDIR      Errno = 20
	EISDIR       Errno = 21
	EINVAL       Errno = 22
	ENFILE       Errno = 23
	EMFILE       Errno = 24
	ENOTTY       Errno = 25
	ETXTBSY      Errno = 26
	EFBIG        Errno = 27
	ENOSPC       Errno = 28
	ESPIPE       Errno = 29
	EROFS        Errno = 30
	EMLINK       Errno = 31
	EPIPE        Errno = 32
	ERANGE       Errno = 34
	ENAMETOOLONG Errno = 36
	ELOOP        Errno = 40
	ENODATA      Errno = 61
	EOVERFLOW    Errno = 75
	ENOTSUP      Errno = 95
	EDQUOT       Errno = 122

	// EWOULDBLOCK is an alias for EAGAIN on Linux.
	EWOULDBLOCK = EAGAIN
)

var errnoNames = map[Errno]string{
	OK:           "OK",
	EPERM:        "EPERM",
	ENOENT:       "ENOENT",
	ESRCH:        "ESRCH",
	EINTR:        "EINTR",
	EIO:          "EIO",
	ENXIO:        "ENXIO",
	E2BIG:        "E2BIG",
	EBADF:        "EBADF",
	EAGAIN:       "EAGAIN",
	ENOMEM:       "ENOMEM",
	EACCES:       "EACCES",
	EFAULT:       "EFAULT",
	EBUSY:        "EBUSY",
	EEXIST:       "EEXIST",
	EXDEV:        "EXDEV",
	ENODEV:       "ENODEV",
	ENOTDIR:      "ENOTDIR",
	EISDIR:       "EISDIR",
	EINVAL:       "EINVAL",
	ENFILE:       "ENFILE",
	EMFILE:       "EMFILE",
	ENOTTY:       "ENOTTY",
	ETXTBSY:      "ETXTBSY",
	EFBIG:        "EFBIG",
	ENOSPC:       "ENOSPC",
	ESPIPE:       "ESPIPE",
	EROFS:        "EROFS",
	EMLINK:       "EMLINK",
	EPIPE:        "EPIPE",
	ERANGE:       "ERANGE",
	ENAMETOOLONG: "ENAMETOOLONG",
	ELOOP:        "ELOOP",
	ENODATA:      "ENODATA",
	EOVERFLOW:    "EOVERFLOW",
	ENOTSUP:      "ENOTSUP",
	EDQUOT:       "EDQUOT",
}

var errnoByName = func() map[string]Errno {
	m := make(map[string]Errno, len(errnoNames))
	for e, n := range errnoNames {
		m[n] = e
	}
	// Accept the alias spelling in parsed traces.
	m["EWOULDBLOCK"] = EAGAIN
	return m
}()

// Name returns the symbolic name ("ENOENT"); unknown values format as
// "errno(N)".
func (e Errno) Name() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Error implements the error interface. OK stringifies as "OK" but callers
// must never wrap OK in an error value; test helpers rely on Errno directly.
func (e Errno) Error() string { return e.Name() }

// String returns the same representation as Name.
func (e Errno) String() string { return e.Name() }

// ErrnoByName resolves a symbolic errno name from a parsed trace.
func ErrnoByName(name string) (Errno, bool) {
	e, ok := errnoByName[name]
	return e, ok
}

// AllErrnos returns every distinct errno known to the package, in ascending
// numeric order, excluding OK.
func AllErrnos() []Errno {
	out := make([]Errno, 0, len(errnoNames)-1)
	for e := range errnoNames {
		if e != OK {
			out = append(out, e)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
