package sys

import (
	"sort"
	"strings"
)

// Open flags (Linux x86-64 octal values).
const (
	O_RDONLY    = 0o0
	O_WRONLY    = 0o1
	O_RDWR      = 0o2
	O_ACCMODE   = 0o3
	O_CREAT     = 0o100
	O_EXCL      = 0o200
	O_NOCTTY    = 0o400
	O_TRUNC     = 0o1000
	O_APPEND    = 0o2000
	O_NONBLOCK  = 0o4000
	O_DSYNC     = 0o10000
	O_ASYNC     = 0o20000
	O_DIRECT    = 0o40000
	O_LARGEFILE = 0o100000
	O_DIRECTORY = 0o200000
	O_NOFOLLOW  = 0o400000
	O_NOATIME   = 0o1000000
	O_CLOEXEC   = 0o2000000
	// O_SYNC is defined as __O_SYNC|O_DSYNC on Linux.
	o_SYNC_only = 0o4000000
	O_SYNC      = o_SYNC_only | O_DSYNC
	O_PATH      = 0o10000000
	// O_TMPFILE is defined as __O_TMPFILE|O_DIRECTORY on Linux.
	o_TMPFILE_only = 0o20000000
	O_TMPFILE      = o_TMPFILE_only | O_DIRECTORY
)

// OpenFlagNames lists every open flag the paper's Figure 2 enumerates, in
// the canonical order used when reporting coverage. Access modes come first;
// the composite flags O_SYNC and O_TMPFILE are reported as themselves, with
// their embedded bits (O_DSYNC, O_DIRECTORY) credited separately only when
// present on their own.
var OpenFlagNames = []struct {
	Name string
	Bit  int
}{
	{"O_RDONLY", O_RDONLY},
	{"O_WRONLY", O_WRONLY},
	{"O_RDWR", O_RDWR},
	{"O_CREAT", O_CREAT},
	{"O_EXCL", O_EXCL},
	{"O_NOCTTY", O_NOCTTY},
	{"O_TRUNC", O_TRUNC},
	{"O_APPEND", O_APPEND},
	{"O_NONBLOCK", O_NONBLOCK},
	{"O_DSYNC", O_DSYNC},
	{"O_ASYNC", O_ASYNC},
	{"O_DIRECT", O_DIRECT},
	{"O_LARGEFILE", O_LARGEFILE},
	{"O_DIRECTORY", O_DIRECTORY},
	{"O_NOFOLLOW", O_NOFOLLOW},
	{"O_NOATIME", O_NOATIME},
	{"O_CLOEXEC", O_CLOEXEC},
	{"O_SYNC", O_SYNC},
	{"O_PATH", O_PATH},
	{"O_TMPFILE", O_TMPFILE},
}

// AccModeInvalidName is the partition label DecodeOpenFlags reports for a
// flags word whose access-mode bits are the reserved 0b11 combination.
const AccModeInvalidName = "O_ACCMODE_INVALID"

// DecodeOpenFlags splits a flags word into the named flags it contains.
// The access mode contributes exactly one name (O_RDONLY, O_WRONLY or
// O_RDWR). O_SYNC subsumes O_DSYNC and O_TMPFILE subsumes O_DIRECTORY, so a
// word containing the composite reports only the composite name.
func DecodeOpenFlags(flags int) []string {
	var names []string
	switch flags & O_ACCMODE {
	case O_RDONLY:
		names = append(names, "O_RDONLY")
	case O_WRONLY:
		names = append(names, "O_WRONLY")
	case O_RDWR:
		names = append(names, "O_RDWR")
	default:
		names = append(names, AccModeInvalidName)
	}
	type bitName struct {
		bit  int
		name string
	}
	simple := []bitName{
		{O_CREAT, "O_CREAT"},
		{O_EXCL, "O_EXCL"},
		{O_NOCTTY, "O_NOCTTY"},
		{O_TRUNC, "O_TRUNC"},
		{O_APPEND, "O_APPEND"},
		{O_NONBLOCK, "O_NONBLOCK"},
		{O_ASYNC, "O_ASYNC"},
		{O_DIRECT, "O_DIRECT"},
		{O_LARGEFILE, "O_LARGEFILE"},
		{O_NOFOLLOW, "O_NOFOLLOW"},
		{O_NOATIME, "O_NOATIME"},
		{O_CLOEXEC, "O_CLOEXEC"},
		{O_PATH, "O_PATH"},
	}
	for _, b := range simple {
		if flags&b.bit != 0 {
			names = append(names, b.name)
		}
	}
	switch {
	case flags&o_SYNC_only != 0:
		names = append(names, "O_SYNC")
	case flags&O_DSYNC != 0:
		names = append(names, "O_DSYNC")
	}
	switch {
	case flags&o_TMPFILE_only != 0:
		names = append(names, "O_TMPFILE")
	case flags&O_DIRECTORY != 0:
		names = append(names, "O_DIRECTORY")
	}
	return names
}

// EncodeOpenFlags is the inverse of DecodeOpenFlags for valid flag names.
// Unknown names are ignored and reported via ok=false.
func EncodeOpenFlags(names []string) (flags int, ok bool) {
	ok = true
	for _, n := range names {
		switch n {
		case "O_RDONLY":
			// zero bit
		case "O_WRONLY":
			flags |= O_WRONLY
		case "O_RDWR":
			flags |= O_RDWR
		case "O_CREAT":
			flags |= O_CREAT
		case "O_EXCL":
			flags |= O_EXCL
		case "O_NOCTTY":
			flags |= O_NOCTTY
		case "O_TRUNC":
			flags |= O_TRUNC
		case "O_APPEND":
			flags |= O_APPEND
		case "O_NONBLOCK":
			flags |= O_NONBLOCK
		case "O_DSYNC":
			flags |= O_DSYNC
		case "O_ASYNC":
			flags |= O_ASYNC
		case "O_DIRECT":
			flags |= O_DIRECT
		case "O_LARGEFILE":
			flags |= O_LARGEFILE
		case "O_DIRECTORY":
			flags |= O_DIRECTORY
		case "O_NOFOLLOW":
			flags |= O_NOFOLLOW
		case "O_NOATIME":
			flags |= O_NOATIME
		case "O_CLOEXEC":
			flags |= O_CLOEXEC
		case "O_SYNC":
			flags |= O_SYNC
		case "O_PATH":
			flags |= O_PATH
		case "O_TMPFILE":
			flags |= O_TMPFILE
		default:
			ok = false
		}
	}
	return flags, ok
}

// FormatOpenFlags renders a flags word as "O_RDWR|O_CREAT|O_TRUNC".
func FormatOpenFlags(flags int) string {
	return strings.Join(DecodeOpenFlags(flags), "|")
}

// lseek whence values.
const (
	SEEK_SET  = 0
	SEEK_CUR  = 1
	SEEK_END  = 2
	SEEK_DATA = 3
	SEEK_HOLE = 4
)

// WhenceNames maps whence values to their symbolic names, in value order.
var WhenceNames = []string{"SEEK_SET", "SEEK_CUR", "SEEK_END", "SEEK_DATA", "SEEK_HOLE"}

// WhenceName returns the symbolic name of an lseek whence value.
func WhenceName(w int) string {
	if w >= 0 && w < len(WhenceNames) {
		return WhenceNames[w]
	}
	return "SEEK_INVALID"
}

// File mode permission and type bits (chmod / mkdir / open mode argument).
const (
	S_ISUID = 0o4000
	S_ISGID = 0o2000
	S_ISVTX = 0o1000
	S_IRUSR = 0o400
	S_IWUSR = 0o200
	S_IXUSR = 0o100
	S_IRGRP = 0o040
	S_IWGRP = 0o020
	S_IXGRP = 0o010
	S_IROTH = 0o004
	S_IWOTH = 0o002
	S_IXOTH = 0o001

	// PermMask covers every bit chmod may set.
	PermMask = S_ISUID | S_ISGID | S_ISVTX | 0o777
)

// ModeBitNames enumerates the mode bits tracked by the bitmap partitioner
// for chmod/mkdir/open mode arguments.
var ModeBitNames = []struct {
	Name string
	Bit  uint32
}{
	{"S_ISUID", S_ISUID},
	{"S_ISGID", S_ISGID},
	{"S_ISVTX", S_ISVTX},
	{"S_IRUSR", S_IRUSR},
	{"S_IWUSR", S_IWUSR},
	{"S_IXUSR", S_IXUSR},
	{"S_IRGRP", S_IRGRP},
	{"S_IWGRP", S_IWGRP},
	{"S_IXGRP", S_IXGRP},
	{"S_IROTH", S_IROTH},
	{"S_IWOTH", S_IWOTH},
	{"S_IXOTH", S_IXOTH},
}

// DecodeModeBits lists the symbolic names of the mode bits set in mode.
func DecodeModeBits(mode uint32) []string {
	var names []string
	for _, b := range ModeBitNames {
		if mode&b.Bit != 0 {
			names = append(names, b.Name)
		}
	}
	return names
}

// AT_* constants for the *at syscall variants.
const (
	AT_FDCWD            = -100
	AT_SYMLINK_NOFOLLOW = 0x100
	AT_SYMLINK_FOLLOW   = 0x400
	AT_EMPTY_PATH       = 0x1000
)

// setxattr flags.
const (
	XATTR_CREATE  = 1
	XATTR_REPLACE = 2
)

// XattrFlagNames maps setxattr flag values to symbolic names (value 0 is the
// default "either" behaviour).
var XattrFlagNames = map[int]string{
	0:             "0",
	XATTR_CREATE:  "XATTR_CREATE",
	XATTR_REPLACE: "XATTR_REPLACE",
}

// XattrFlagName returns the symbolic name for a setxattr flags value.
func XattrFlagName(f int) string {
	if n, ok := XattrFlagNames[f]; ok {
		return n
	}
	return "XATTR_INVALID"
}

// openat2 RESOLVE_* flags (subset relevant to path resolution).
const (
	RESOLVE_NO_SYMLINKS = 0x04
	RESOLVE_BENEATH     = 0x08
)

// SortedNames returns a sorted copy of names; reporting helpers use it to
// keep output deterministic.
func SortedNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
