package sys

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestErrnoNames(t *testing.T) {
	if ENOENT.Name() != "ENOENT" || OK.Name() != "OK" {
		t.Error("basic names wrong")
	}
	if Errno(9999).Name() != "errno(9999)" {
		t.Errorf("unknown errno = %s", Errno(9999).Name())
	}
	if ENOENT.Error() != "ENOENT" || ENOENT.String() != "ENOENT" {
		t.Error("Error/String mismatch")
	}
}

func TestErrnoByName(t *testing.T) {
	e, ok := ErrnoByName("EACCES")
	if !ok || e != EACCES {
		t.Errorf("EACCES lookup = %v,%v", e, ok)
	}
	// The Linux alias resolves to EAGAIN.
	e, ok = ErrnoByName("EWOULDBLOCK")
	if !ok || e != EAGAIN {
		t.Errorf("EWOULDBLOCK = %v,%v", e, ok)
	}
	if _, ok := ErrnoByName("EBOGUS"); ok {
		t.Error("bogus errno resolved")
	}
}

func TestErrnoRoundTrip(t *testing.T) {
	for _, e := range AllErrnos() {
		back, ok := ErrnoByName(e.Name())
		if !ok || back != e {
			t.Errorf("%s does not round-trip", e)
		}
	}
}

func TestAllErrnosSorted(t *testing.T) {
	all := AllErrnos()
	if len(all) < 30 {
		t.Fatalf("only %d errnos", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("AllErrnos not sorted")
	}
	for _, e := range all {
		if e == OK {
			t.Error("AllErrnos contains OK")
		}
	}
}

func TestLinuxABIValues(t *testing.T) {
	// Spot-check against the real x86-64 ABI.
	cases := map[Errno]int{
		EPERM: 1, ENOENT: 2, EIO: 5, EBADF: 9, EAGAIN: 11, EACCES: 13,
		EEXIST: 17, ENOTDIR: 20, EISDIR: 21, EINVAL: 22, EMFILE: 24,
		EFBIG: 27, ENOSPC: 28, EROFS: 30, ENAMETOOLONG: 36, ELOOP: 40,
		ENODATA: 61, EOVERFLOW: 75, ENOTSUP: 95, EDQUOT: 122,
	}
	for e, v := range cases {
		if int(e) != v {
			t.Errorf("%s = %d, want %d", e.Name(), int(e), v)
		}
	}
	flagCases := map[string]int{
		"O_CREAT": 0x40, "O_EXCL": 0x80, "O_TRUNC": 0x200, "O_APPEND": 0x400,
		"O_NONBLOCK": 0x800, "O_DIRECT": 0x4000, "O_LARGEFILE": 0x8000,
		"O_DIRECTORY": 0x10000, "O_NOFOLLOW": 0x20000, "O_CLOEXEC": 0x80000,
		"O_SYNC": 0x101000, "O_PATH": 0x200000, "O_TMPFILE": 0x410000,
	}
	for name, want := range flagCases {
		got, ok := EncodeOpenFlags([]string{name})
		if !ok || got != want {
			t.Errorf("%s = %#x, want %#x", name, got, want)
		}
	}
	if AT_FDCWD != -100 {
		t.Errorf("AT_FDCWD = %d", AT_FDCWD)
	}
}

func TestDecodeEncodeOpenFlagsRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		// Constrain to valid flag bits with a valid access mode.
		flags := int(raw) & (O_ACCMODE | O_CREAT | O_EXCL | O_NOCTTY | O_TRUNC |
			O_APPEND | O_NONBLOCK | O_SYNC | O_ASYNC | O_DIRECT | O_LARGEFILE |
			O_TMPFILE | O_NOFOLLOW | O_NOATIME | O_CLOEXEC | O_PATH)
		if flags&O_ACCMODE == O_ACCMODE {
			flags &^= 1 // make the access mode valid
		}
		names := DecodeOpenFlags(flags)
		back, ok := EncodeOpenFlags(names)
		if !ok {
			return false
		}
		// Decode(back) must equal the original name set (encode/decode can
		// differ in raw bits only through the composite-flag subsumption).
		return reflect.DeepEqual(DecodeOpenFlags(back), names)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeOpenFlagsUnknown(t *testing.T) {
	if _, ok := EncodeOpenFlags([]string{"O_BOGUS"}); ok {
		t.Error("unknown flag accepted")
	}
}

func TestFormatOpenFlags(t *testing.T) {
	got := FormatOpenFlags(O_RDWR | O_CREAT | O_TRUNC)
	if got != "O_RDWR|O_CREAT|O_TRUNC" {
		t.Errorf("format = %s", got)
	}
	if FormatOpenFlags(0) != "O_RDONLY" {
		t.Errorf("zero flags = %s", FormatOpenFlags(0))
	}
}

func TestDecodeModeBits(t *testing.T) {
	got := DecodeModeBits(0o4621)
	want := []string{"S_ISUID", "S_IRUSR", "S_IWUSR", "S_IWGRP", "S_IXOTH"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DecodeModeBits(4621) = %v, want %v", got, want)
	}
	if DecodeModeBits(0) != nil {
		t.Error("zero mode should decode to nil")
	}
}

func TestWhenceName(t *testing.T) {
	cases := map[int]string{
		0: "SEEK_SET", 1: "SEEK_CUR", 2: "SEEK_END",
		3: "SEEK_DATA", 4: "SEEK_HOLE", 5: "SEEK_INVALID", -1: "SEEK_INVALID",
	}
	for w, want := range cases {
		if got := WhenceName(w); got != want {
			t.Errorf("WhenceName(%d) = %s, want %s", w, got, want)
		}
	}
}

func TestXattrFlagName(t *testing.T) {
	if XattrFlagName(0) != "0" || XattrFlagName(1) != "XATTR_CREATE" ||
		XattrFlagName(2) != "XATTR_REPLACE" || XattrFlagName(3) != "XATTR_INVALID" {
		t.Error("xattr flag names wrong")
	}
}

func TestSortedNames(t *testing.T) {
	in := []string{"c", "a", "b"}
	out := SortedNames(in)
	if !reflect.DeepEqual(out, []string{"a", "b", "c"}) {
		t.Errorf("sorted = %v", out)
	}
	// Input untouched.
	if !reflect.DeepEqual(in, []string{"c", "a", "b"}) {
		t.Error("input mutated")
	}
}
