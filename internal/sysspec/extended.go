package sysspec

import "iocov/internal/sys"

// extendedSpecs implements the paper's first future-work item ("we plan to
// support more syscalls"): fifteen additional file-system syscalls beyond the
// prototype's 27. They contribute mainly output coverage — their arguments
// are identifiers (paths, descriptors), which partition only under the
// identifier-tracking option.
var extendedSpecs = []Spec{
	{
		Base:     "unlink",
		Variants: []string{"unlink", "unlinkat"},
		Args: []ArgSpec{
			{Name: "pathname", Key: "pathname", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBUSY, sys.EFAULT, sys.EIO, sys.EISDIR, sys.ENOMEM,
			sys.EPERM, sys.EROFS,
		}),
	},
	{
		Base:     "rmdir",
		Variants: []string{"rmdir"},
		Args: []ArgSpec{
			{Name: "pathname", Key: "pathname", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBUSY, sys.EEXIST, sys.EFAULT, sys.EINVAL, sys.ENOMEM,
			sys.EPERM, sys.EROFS,
		}),
	},
	{
		Base:     "rename",
		Variants: []string{"rename", "renameat", "renameat2"},
		Args: []ArgSpec{
			{Name: "oldname", Key: "oldname", Class: Identifier, Scheme: SchemePath},
			{Name: "newname", Key: "newname", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBUSY, sys.EDQUOT, sys.EEXIST, sys.EFAULT, sys.EINVAL,
			sys.EISDIR, sys.EMLINK, sys.ENOMEM, sys.ENOSPC, sys.EPERM,
			sys.EROFS, sys.EXDEV,
		}),
	},
	{
		Base:     "link",
		Variants: []string{"link", "linkat"},
		Args: []ArgSpec{
			{Name: "oldname", Key: "oldname", Class: Identifier, Scheme: SchemePath},
			{Name: "newname", Key: "newname", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EDQUOT, sys.EEXIST, sys.EFAULT, sys.EIO, sys.EMLINK,
			sys.ENOMEM, sys.ENOSPC, sys.EPERM, sys.EROFS, sys.EXDEV,
		}),
	},
	{
		Base:     "symlink",
		Variants: []string{"symlink", "symlinkat"},
		Args: []ArgSpec{
			{Name: "oldname", Key: "oldname", Class: Identifier, Scheme: SchemePath},
			{Name: "newname", Key: "newname", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EDQUOT, sys.EEXIST, sys.EFAULT, sys.EIO, sys.ENOMEM,
			sys.ENOSPC, sys.EPERM, sys.EROFS,
		}),
	},
	{
		Base:     "fallocate",
		Variants: []string{"fallocate"},
		Args: []ArgSpec{
			{Name: "offset", Key: "offset", Class: Numeric, Scheme: SchemeOffset},
			{Name: "len", Key: "len", Class: Numeric, Scheme: SchemeBytes},
			{Name: "fd", Key: "fd", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetZero,
		Errnos: []sys.Errno{
			sys.EBADF, sys.EFBIG, sys.EINTR, sys.EINVAL, sys.EIO,
			sys.ENODEV, sys.ENOSPC, sys.ENOTSUP, sys.EPERM, sys.ESPIPE,
		},
	},
	{
		Base:     "fsync",
		Variants: []string{"fsync"},
		Args: []ArgSpec{
			{Name: "fd", Key: "fd", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetZero,
		Errnos: []sys.Errno{
			sys.EBADF, sys.EDQUOT, sys.EINTR, sys.EIO, sys.ENOSPC, sys.EROFS,
		},
	},
	{
		Base:     "fdatasync",
		Variants: []string{"fdatasync"},
		Args: []ArgSpec{
			{Name: "fd", Key: "fd", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetZero,
		Errnos: []sys.Errno{
			sys.EBADF, sys.EDQUOT, sys.EINTR, sys.EIO, sys.ENOSPC, sys.EROFS,
		},
	},
	{
		Base:     "listxattr",
		Variants: []string{"listxattr", "llistxattr", "flistxattr"},
		Args: []ArgSpec{
			{Name: "size", Key: "size", Class: Numeric, Scheme: SchemeBytes},
		},
		Ret: RetBytes,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.E2BIG, sys.EBADF, sys.EFAULT, sys.ENOTSUP, sys.ERANGE,
		}),
	},
	{
		Base:     "removexattr",
		Variants: []string{"removexattr", "lremovexattr", "fremovexattr"},
		Args:     nil,
		Ret:      RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBADF, sys.EFAULT, sys.ENODATA, sys.ENOTSUP, sys.EPERM, sys.EROFS,
		}),
	},
	{
		Base:     "statfs",
		Variants: []string{"statfs", "fstatfs"},
		Args:     nil,
		Ret:      RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBADF, sys.EFAULT, sys.EINTR, sys.EIO, sys.ENOMEM,
		}),
	},
	{
		Base:     "dup",
		Variants: []string{"dup", "dup2"},
		Args: []ArgSpec{
			{Name: "fildes", Key: "fildes", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetFD,
		Errnos: []sys.Errno{
			sys.EBADF, sys.EINTR, sys.EINVAL, sys.EMFILE, sys.ENFILE,
		},
	},
	{
		Base:     "sync",
		Variants: []string{"sync"},
		Args:     nil,
		Ret:      RetZero,
		Errnos:   nil, // sync(2) is always successful
	},
	{
		Base:     "stat",
		Variants: []string{"stat", "fstat", "newfstatat", "statx"},
		Args: []ArgSpec{
			{Name: "filename", Key: "filename", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBADF, sys.EFAULT, sys.ENOMEM, sys.EOVERFLOW,
		}),
	},
	{
		Base:     "lstat",
		Variants: []string{"lstat"},
		Args: []ArgSpec{
			{Name: "filename", Key: "filename", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EFAULT, sys.ENOMEM, sys.EOVERFLOW,
		}),
	},
}

// NewExtendedTable returns the 27-syscall table augmented with the fifteen
// future-work base syscalls (26 bases in total).
func NewExtendedTable() *Table {
	t := NewTable()
	for i := range extendedSpecs {
		s := &extendedSpecs[i]
		if _, dup := t.byBase[s.Base]; dup {
			panic("sysspec: extended spec duplicates base " + s.Base)
		}
		t.byBase[s.Base] = s
		t.bases = append(t.bases, s.Base)
		for _, v := range s.Variants {
			if _, dup := t.byVariant[v]; dup {
				panic("sysspec: extended spec duplicates variant " + v)
			}
			t.byVariant[v] = s
		}
	}
	return t
}
