package sysspec

import "testing"

func TestExtendedTable(t *testing.T) {
	tbl := NewExtendedTable()
	if got := len(tbl.Bases()); got != 26 {
		t.Errorf("extended bases = %d, want 26 (11 + 15)", got)
	}
	// Extended variants resolve.
	for raw, base := range map[string]string{
		"unlink": "unlink", "unlinkat": "unlink",
		"rename": "rename", "renameat": "rename", "renameat2": "rename",
		"fsync": "fsync", "symlinkat": "symlink", "statx": "stat",
	} {
		spec := tbl.Base(raw)
		if spec == nil || spec.Base != base {
			t.Errorf("Base(%q) = %v, want %s", raw, spec, base)
		}
	}
	// The original 27 still resolve the same way.
	if tbl.Base("openat2").Base != "open" {
		t.Error("openat2 lost its merge target")
	}
	// The standard table is unaffected (no shared mutation).
	std := NewTable()
	if std.Base("unlink") != nil {
		t.Error("standard table leaked extended syscalls")
	}
	if len(std.Bases()) != 11 {
		t.Errorf("standard bases = %d after building extended", len(std.Bases()))
	}
}

func TestExtendedErrnoOrdering(t *testing.T) {
	tbl := NewExtendedTable()
	for _, base := range tbl.Bases() {
		spec := tbl.Spec(base)
		for i := 1; i < len(spec.Errnos); i++ {
			if spec.Errnos[i-1].Name() >= spec.Errnos[i].Name() {
				t.Errorf("%s errnos unsorted at %s", base, spec.Errnos[i])
			}
		}
	}
}
