// Package sysspec holds the syscall metadata IOCov is built on: the 27
// file-system syscalls the prototype traces (11 base syscalls plus
// variants), the variant-merging table, the 14 tracked input arguments with
// their argument classes, and each base syscall's errno universe as
// documented in its man page (which is what the paper's Figure 4 x-axis is
// drawn from).
package sysspec

import (
	"fmt"

	"iocov/internal/sys"
)

// ArgClass is the paper's four-way classification of syscall arguments.
type ArgClass int

// Argument classes (§3: identifier, bitmap, numeric, categorical).
const (
	Identifier ArgClass = iota
	Bitmap
	Numeric
	Categorical
)

func (c ArgClass) String() string {
	switch c {
	case Identifier:
		return "identifier"
	case Bitmap:
		return "bitmap"
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return "unknown"
	}
}

// Scheme names select a concrete partitioning strategy in
// internal/partition.
const (
	SchemeOpenFlags  = "openflags"  // bitmap of open(2) flags
	SchemeModeBits   = "modebits"   // bitmap of permission bits
	SchemeBytes      = "bytes"      // non-negative byte count, powers of 2
	SchemeOffset     = "offset"     // signed offset, powers of 2 + negative
	SchemeWhence     = "whence"     // lseek whence values
	SchemeXattrFlags = "xattrflags" // setxattr flag values
	SchemePath       = "path"       // identifier (pathname)
	SchemeFD         = "fd"         // identifier (descriptor)
)

// RetKind describes how a syscall's successful return value partitions.
type RetKind int

// Return-value kinds.
const (
	// RetZero: success returns 0 (one "OK" partition).
	RetZero RetKind = iota
	// RetFD: success returns a descriptor (one "OK" partition; the paper
	// treats any return >= 0 as a single success partition for open).
	RetFD
	// RetBytes: success returns a byte count, partitioned by powers of 2
	// like numeric inputs.
	RetBytes
	// RetOffset: success returns a file offset, partitioned like RetBytes.
	RetOffset
)

// ArgSpec describes one tracked input argument of a base syscall.
type ArgSpec struct {
	// Name is the report name, e.g. "flags".
	Name string
	// Key is the trace-event argument key carrying the value. Variants use
	// the same key (the kernel layer normalizes them).
	Key string
	// Class is the paper's argument class.
	Class ArgClass
	// Scheme selects the partitioner.
	Scheme string
	// Variants, when non-empty, limits the argument to these raw syscall
	// names (e.g. read offset exists only for pread64).
	Variants []string
}

// Spec describes one base syscall after variant merging.
type Spec struct {
	// Base is the merged syscall name.
	Base string
	// Variants are the raw syscall names merged into Base (including Base
	// itself when it is a real syscall).
	Variants []string
	// Args are the tracked input arguments.
	Args []ArgSpec
	// Ret is the success-return partitioning kind.
	Ret RetKind
	// Errnos is the syscall's documented errno universe, in man-page
	// (alphabetical) order.
	Errnos []sys.Errno
}

// pathErrs are the errno values shared by every path-resolving syscall.
var pathErrs = []sys.Errno{
	sys.EACCES, sys.ELOOP, sys.ENAMETOOLONG, sys.ENOENT, sys.ENOTDIR,
}

func mergeErrnos(groups ...[]sys.Errno) []sys.Errno {
	seen := make(map[sys.Errno]bool)
	var out []sys.Errno
	for _, g := range groups {
		for _, e := range g {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	// Alphabetical by name, like a man page's ERRORS section.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name() < out[j-1].Name(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// specs is the full table for the 27 traced syscalls.
var specs = []Spec{
	{
		Base:     "open",
		Variants: []string{"open", "openat", "creat", "openat2"},
		Args: []ArgSpec{
			// creat(2) takes no flags argument at the syscall boundary (its
			// O_CREAT|O_WRONLY|O_TRUNC is implied), so the tracked flags
			// argument is restricted to the variants that carry one.
			{Name: "flags", Key: "flags", Class: Bitmap, Scheme: SchemeOpenFlags, Variants: []string{"open", "openat", "openat2"}},
			{Name: "mode", Key: "mode", Class: Bitmap, Scheme: SchemeModeBits},
			{Name: "filename", Key: "filename", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetFD,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.E2BIG, sys.EAGAIN, sys.EBADF, sys.EBUSY, sys.EDQUOT,
			sys.EEXIST, sys.EFAULT, sys.EFBIG, sys.EINTR, sys.EINVAL,
			sys.EISDIR, sys.EMFILE, sys.ENFILE, sys.ENODEV, sys.ENOMEM,
			sys.ENOSPC, sys.ENXIO, sys.EOVERFLOW, sys.EPERM, sys.EROFS,
			sys.ETXTBSY, sys.EXDEV,
		}),
	},
	{
		Base:     "read",
		Variants: []string{"read", "pread64", "readv"},
		Args: []ArgSpec{
			{Name: "count", Key: "count", Class: Numeric, Scheme: SchemeBytes},
			{Name: "pos", Key: "pos", Class: Numeric, Scheme: SchemeOffset, Variants: []string{"pread64"}},
			{Name: "fd", Key: "fd", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetBytes,
		Errnos: []sys.Errno{
			sys.EAGAIN, sys.EBADF, sys.EFAULT, sys.EINTR, sys.EINVAL,
			sys.EIO, sys.EISDIR, sys.ENXIO, sys.ESPIPE,
		},
	},
	{
		Base:     "write",
		Variants: []string{"write", "pwrite64", "writev"},
		Args: []ArgSpec{
			{Name: "count", Key: "count", Class: Numeric, Scheme: SchemeBytes},
			{Name: "pos", Key: "pos", Class: Numeric, Scheme: SchemeOffset, Variants: []string{"pwrite64"}},
			{Name: "fd", Key: "fd", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetBytes,
		Errnos: []sys.Errno{
			sys.EAGAIN, sys.EBADF, sys.EDQUOT, sys.EFAULT, sys.EFBIG,
			sys.EINTR, sys.EINVAL, sys.EIO, sys.ENOSPC, sys.EPERM,
			sys.EPIPE, sys.ESPIPE,
		},
	},
	{
		Base:     "lseek",
		Variants: []string{"lseek"},
		Args: []ArgSpec{
			{Name: "offset", Key: "offset", Class: Numeric, Scheme: SchemeOffset},
			{Name: "whence", Key: "whence", Class: Categorical, Scheme: SchemeWhence},
			{Name: "fd", Key: "fd", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetOffset,
		Errnos: []sys.Errno{
			sys.EBADF, sys.EINVAL, sys.ENXIO, sys.EOVERFLOW, sys.ESPIPE,
		},
	},
	{
		Base:     "truncate",
		Variants: []string{"truncate", "ftruncate"},
		Args: []ArgSpec{
			{Name: "length", Key: "length", Class: Numeric, Scheme: SchemeBytes},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBADF, sys.EFAULT, sys.EFBIG, sys.EINTR, sys.EINVAL,
			sys.EIO, sys.EISDIR, sys.EPERM, sys.EROFS, sys.ETXTBSY,
		}),
	},
	{
		Base:     "mkdir",
		Variants: []string{"mkdir", "mkdirat"},
		Args: []ArgSpec{
			{Name: "mode", Key: "mode", Class: Bitmap, Scheme: SchemeModeBits},
			{Name: "pathname", Key: "pathname", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBADF, sys.EDQUOT, sys.EEXIST, sys.EFAULT, sys.EINVAL,
			sys.EMLINK, sys.ENOMEM, sys.ENOSPC, sys.EPERM, sys.EROFS,
		}),
	},
	{
		Base:     "chmod",
		Variants: []string{"chmod", "fchmod", "fchmodat"},
		Args: []ArgSpec{
			{Name: "mode", Key: "mode", Class: Bitmap, Scheme: SchemeModeBits},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBADF, sys.EFAULT, sys.EINVAL, sys.EIO, sys.ENOMEM,
			sys.ENOTSUP, sys.EPERM, sys.EROFS,
		}),
	},
	{
		Base:     "close",
		Variants: []string{"close"},
		Args: []ArgSpec{
			{Name: "fd", Key: "fd", Class: Identifier, Scheme: SchemeFD},
		},
		Ret: RetZero,
		Errnos: []sys.Errno{
			sys.EBADF, sys.EDQUOT, sys.EINTR, sys.EIO, sys.ENOSPC,
		},
	},
	{
		Base:     "chdir",
		Variants: []string{"chdir", "fchdir"},
		Args: []ArgSpec{
			{Name: "filename", Key: "filename", Class: Identifier, Scheme: SchemePath},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.EBADF, sys.EFAULT, sys.EIO, sys.ENOMEM,
		}),
	},
	{
		Base:     "setxattr",
		Variants: []string{"setxattr", "lsetxattr", "fsetxattr"},
		Args: []ArgSpec{
			{Name: "size", Key: "size", Class: Numeric, Scheme: SchemeBytes},
			{Name: "flags", Key: "flags", Class: Categorical, Scheme: SchemeXattrFlags},
		},
		Ret: RetZero,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.E2BIG, sys.EBADF, sys.EDQUOT, sys.EEXIST, sys.EFAULT,
			sys.EINVAL, sys.ENODATA, sys.ENOSPC, sys.ENOTSUP, sys.EPERM,
			sys.ERANGE, sys.EROFS,
		}),
	},
	{
		Base:     "getxattr",
		Variants: []string{"getxattr", "lgetxattr", "fgetxattr"},
		Args: []ArgSpec{
			{Name: "size", Key: "size", Class: Numeric, Scheme: SchemeBytes},
		},
		Ret: RetBytes,
		Errnos: mergeErrnos(pathErrs, []sys.Errno{
			sys.E2BIG, sys.EBADF, sys.EFAULT, sys.ENODATA, sys.ENOTSUP,
			sys.ERANGE,
		}),
	},
}

// Table gives indexed access to the specs and the variant map.
type Table struct {
	byBase    map[string]*Spec
	byVariant map[string]*Spec
	bases     []string
}

// NewTable builds the standard table. It panics only on an internal
// inconsistency in the static data (duplicate variant), which the tests
// assert can't happen.
func NewTable() *Table {
	t := &Table{
		byBase:    make(map[string]*Spec),
		byVariant: make(map[string]*Spec),
	}
	for i := range specs {
		s := &specs[i]
		if _, dup := t.byBase[s.Base]; dup {
			panic(fmt.Sprintf("sysspec: duplicate base %q", s.Base))
		}
		t.byBase[s.Base] = s
		t.bases = append(t.bases, s.Base)
		for _, v := range s.Variants {
			if _, dup := t.byVariant[v]; dup {
				panic(fmt.Sprintf("sysspec: duplicate variant %q", v))
			}
			t.byVariant[v] = s
		}
	}
	return t
}

// Bases returns the 11 base syscall names in table order.
func (t *Table) Bases() []string { return append([]string(nil), t.bases...) }

// Base resolves a raw syscall name to its base spec, or nil when the syscall
// is outside IOCov's scope (the analyzer skips such events, the way IOCov
// ignores out-of-scope LTTng records).
func (t *Table) Base(rawName string) *Spec { return t.byVariant[rawName] }

// Spec returns the spec for a base name, or nil.
func (t *Table) Spec(base string) *Spec { return t.byBase[base] }

// VariantCount returns the total number of raw syscalls in the table (the
// paper's 27).
func (t *Table) VariantCount() int { return len(t.byVariant) }

// TrackedArgCount returns the number of partitioned (non-identifier) input
// arguments across all base syscalls (the paper's 14).
func (t *Table) TrackedArgCount() int {
	n := 0
	for _, base := range t.bases {
		for _, a := range t.byBase[base].Args {
			if a.Class != Identifier {
				n++
			}
		}
	}
	return n
}

// TrackedArgs returns the non-identifier arguments of a base spec.
func (s *Spec) TrackedArgs() []ArgSpec {
	var out []ArgSpec
	for _, a := range s.Args {
		if a.Class != Identifier {
			out = append(out, a)
		}
	}
	return out
}

// ArgAppliesTo reports whether the argument is recorded for the given raw
// variant (e.g. read's "pos" argument exists only for pread64).
func (a *ArgSpec) ArgAppliesTo(rawName string) bool {
	if len(a.Variants) == 0 {
		return true
	}
	for _, v := range a.Variants {
		if v == rawName {
			return true
		}
	}
	return false
}
