package sysspec

import (
	"testing"

	"iocov/internal/sys"
)

func TestPaperCounts(t *testing.T) {
	tbl := NewTable()
	// §4: "27 syscalls, including 11 base syscalls".
	if got := tbl.VariantCount(); got != 27 {
		t.Errorf("variant count = %d, want 27", got)
	}
	if got := len(tbl.Bases()); got != 11 {
		t.Errorf("base count = %d, want 11", got)
	}
	// §4: "input coverage for 14 distinct arguments".
	if got := tbl.TrackedArgCount(); got != 14 {
		t.Errorf("tracked args = %d, want 14", got)
	}
}

func TestBaseNames(t *testing.T) {
	tbl := NewTable()
	want := []string{"open", "read", "write", "lseek", "truncate", "mkdir",
		"chmod", "close", "chdir", "setxattr", "getxattr"}
	got := tbl.Bases()
	if len(got) != len(want) {
		t.Fatalf("bases = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("base[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestVariantMerging(t *testing.T) {
	tbl := NewTable()
	cases := map[string]string{
		"open": "open", "openat": "open", "creat": "open", "openat2": "open",
		"read": "read", "pread64": "read", "readv": "read",
		"write": "write", "pwrite64": "write", "writev": "write",
		"ftruncate": "truncate", "mkdirat": "mkdir",
		"fchmod": "chmod", "fchmodat": "chmod", "fchdir": "chdir",
		"lsetxattr": "setxattr", "fsetxattr": "setxattr",
		"lgetxattr": "getxattr", "fgetxattr": "getxattr",
	}
	for raw, base := range cases {
		spec := tbl.Base(raw)
		if spec == nil {
			t.Errorf("no spec for %s", raw)
			continue
		}
		if spec.Base != base {
			t.Errorf("%s merged to %s, want %s", raw, spec.Base, base)
		}
	}
	// Out-of-scope syscalls resolve to nil.
	for _, raw := range []string{"unlink", "rename", "fsync", "stat", "mmap", ""} {
		if tbl.Base(raw) != nil {
			t.Errorf("unexpected spec for %q", raw)
		}
	}
}

func TestArgVariantRestriction(t *testing.T) {
	tbl := NewTable()
	read := tbl.Spec("read")
	var pos *ArgSpec
	for i := range read.Args {
		if read.Args[i].Name == "pos" {
			pos = &read.Args[i]
		}
	}
	if pos == nil {
		t.Fatal("read has no pos arg")
	}
	if !pos.ArgAppliesTo("pread64") {
		t.Error("pos should apply to pread64")
	}
	if pos.ArgAppliesTo("read") {
		t.Error("pos should not apply to read")
	}
	// Unrestricted args apply to everything.
	count := &read.Args[0]
	if count.Name != "count" || !count.ArgAppliesTo("readv") {
		t.Error("count should apply to readv")
	}
}

func TestErrnoUniverses(t *testing.T) {
	tbl := NewTable()
	open := tbl.Spec("open")
	// Figure 4 lists 27 distinct error codes for the open family.
	if got := len(open.Errnos); got != 27 {
		t.Errorf("open errnos = %d, want 27", got)
	}
	// Sorted alphabetically like a man page, with no duplicates.
	for _, base := range tbl.Bases() {
		spec := tbl.Spec(base)
		seen := make(map[sys.Errno]bool)
		for i, e := range spec.Errnos {
			if e == sys.OK {
				t.Errorf("%s errno universe contains OK", base)
			}
			if seen[e] {
				t.Errorf("%s errno universe repeats %s", base, e)
			}
			seen[e] = true
			if i > 0 && spec.Errnos[i-1].Name() >= e.Name() {
				t.Errorf("%s errnos not sorted at %s", base, e)
			}
		}
	}
	// Spot-check man-page facts.
	has := func(base string, e sys.Errno) bool {
		for _, x := range tbl.Spec(base).Errnos {
			if x == e {
				return true
			}
		}
		return false
	}
	if !has("open", sys.EOVERFLOW) {
		t.Error("open missing EOVERFLOW")
	}
	if !has("write", sys.ENOSPC) || !has("write", sys.EDQUOT) {
		t.Error("write missing ENOSPC/EDQUOT")
	}
	if has("read", sys.ENOSPC) {
		t.Error("read should not list ENOSPC")
	}
	if !has("lseek", sys.ENXIO) {
		t.Error("lseek missing ENXIO")
	}
	if !has("setxattr", sys.ENODATA) || !has("getxattr", sys.ENODATA) {
		t.Error("xattr family missing ENODATA")
	}
	if !has("chmod", sys.ENOTSUP) {
		t.Error("chmod missing ENOTSUP (fchmodat AT_SYMLINK_NOFOLLOW)")
	}
}

func TestTrackedArgs(t *testing.T) {
	tbl := NewTable()
	open := tbl.Spec("open")
	tracked := open.TrackedArgs()
	if len(tracked) != 2 {
		t.Fatalf("open tracked args = %d, want 2 (flags, mode)", len(tracked))
	}
	if tracked[0].Name != "flags" || tracked[0].Class != Bitmap {
		t.Errorf("open arg 0 = %+v", tracked[0])
	}
	lseek := tbl.Spec("lseek")
	classes := map[string]ArgClass{}
	for _, a := range lseek.TrackedArgs() {
		classes[a.Name] = a.Class
	}
	if classes["offset"] != Numeric || classes["whence"] != Categorical {
		t.Errorf("lseek classes = %v", classes)
	}
}

func TestRetKinds(t *testing.T) {
	tbl := NewTable()
	cases := map[string]RetKind{
		"open": RetFD, "read": RetBytes, "write": RetBytes,
		"lseek": RetOffset, "truncate": RetZero, "close": RetZero,
		"getxattr": RetBytes, "setxattr": RetZero,
	}
	for base, want := range cases {
		if got := tbl.Spec(base).Ret; got != want {
			t.Errorf("%s ret kind = %v, want %v", base, got, want)
		}
	}
}

func TestArgClassString(t *testing.T) {
	cases := map[ArgClass]string{
		Identifier: "identifier", Bitmap: "bitmap",
		Numeric: "numeric", Categorical: "categorical",
		ArgClass(99): "unknown",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %s, want %s", int(c), c.String(), want)
		}
	}
}
