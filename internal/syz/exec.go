package syz

import (
	"fmt"

	"iocov/internal/kernel"
	"iocov/internal/suites/workload"
	"iocov/internal/sys"
	"iocov/internal/trace"
)

// sigEntry describes how one raw syscall's positional arguments map to the
// semantic keys IOCov's analyzer expects. Kinds:
//
//	fd, dirfd   — descriptor (resolved through r-bindings)
//	path, name  — string pointer
//	flags, mode, count, offset, whence, length, size, resolve — numeric
//	data        — data pointer whose length is the size argument
var signatures = map[string][]string{
	"open":      {"path", "flags", "mode"},
	"openat":    {"dirfd", "path", "flags", "mode"},
	"creat":     {"path", "mode"},
	"read":      {"fd", "data", "count"},
	"pread64":   {"fd", "data", "count", "offset"},
	"write":     {"fd", "data", "count"},
	"pwrite64":  {"fd", "data", "count", "offset"},
	"lseek":     {"fd", "offset", "whence"},
	"truncate":  {"path", "length"},
	"ftruncate": {"fd", "length"},
	"mkdir":     {"path", "mode"},
	"mkdirat":   {"dirfd", "path", "mode"},
	"chmod":     {"path", "mode"},
	"fchmod":    {"fd", "mode"},
	"fchmodat":  {"dirfd", "path", "mode", "aflags"},
	"close":     {"fd"},
	"chdir":     {"path"},
	"fchdir":    {"fd"},
	"setxattr":  {"path", "name", "data", "size", "xflags"},
	"lsetxattr": {"path", "name", "data", "size", "xflags"},
	"fsetxattr": {"fd", "name", "data", "size", "xflags"},
	"getxattr":  {"path", "name", "data", "size"},
	"lgetxattr": {"path", "name", "data", "size"},
	"fgetxattr": {"fd", "name", "data", "size"},
}

// keyFor maps a signature kind to the trace-event argument key the
// analyzer's sysspec expects (see internal/kernel's emit calls).
func keyFor(name, kind string) string {
	switch kind {
	case "dirfd":
		return "dfd"
	case "path":
		switch name {
		case "open", "openat", "chdir":
			return "filename"
		case "truncate":
			return "path"
		default:
			return "pathname"
		}
	case "offset":
		switch name {
		case "pread64", "pwrite64":
			return "pos"
		default:
			return "offset"
		}
	case "aflags", "xflags":
		return "flags"
	default:
		return kind
	}
}

// Convert statically turns a program into trace events: arguments only, no
// return values (fuzzer corpora describe inputs, not outcomes). Result
// references resolve to a placeholder fd value. Calls whose syscall is
// unknown are skipped and counted.
func Convert(progs []Program) (events []trace.Event, skipped int) {
	var seq uint64
	for pi, prog := range progs {
		for _, c := range prog.Calls {
			sig, ok := signatures[c.Name]
			if !ok {
				skipped++
				continue
			}
			seq++
			ev := trace.Event{Seq: seq, PID: pi + 1, Name: c.Name}
			fillArgs(&ev, c, sig, func(ref int) int64 { return int64(100 + ref) })
			events = append(events, ev)
		}
	}
	return events, skipped
}

func fillArgs(ev *trace.Event, c Call, sig []string, resolve func(int) int64) {
	for i, kind := range sig {
		if i >= len(c.Args) {
			break
		}
		a := c.Args[i]
		key := keyFor(c.Name, kind)
		switch kind {
		case "path", "name":
			if a.Kind == KindString {
				if ev.Strs == nil {
					ev.Strs = make(map[string]string)
				}
				ev.Strs[key] = a.Str
				if kind == "path" {
					ev.Path = a.Str
				}
			}
		case "data":
			// The pointer itself is not traced; its length arrives via the
			// count/size argument.
		default:
			if ev.Args == nil {
				ev.Args = make(map[string]int64)
			}
			switch a.Kind {
			case KindConst:
				v := a.Const
				if kind == "dirfd" {
					// 0xffffffffffffff9c is AT_FDCWD as unsigned.
					if int32(v) == sys.AT_FDCWD {
						v = sys.AT_FDCWD
					}
				}
				ev.Args[key] = v
			case KindResult:
				ev.Args[key] = resolve(a.Ref)
			}
		}
	}
}

// ExecResult summarizes an execution run.
type ExecResult struct {
	Executed int
	Skipped  int
	Failures int
}

// Execute runs programs against a simulated process, binding r-results to
// real descriptors so descriptor-based calls operate on live files. Trace
// events (with real return values) flow through the kernel's own sink, so
// attaching an analyzer to the kernel yields full input+output coverage.
func Execute(p *kernel.Proc, progs []Program) ExecResult {
	var res ExecResult
	for _, prog := range progs {
		bindings := make(map[int]int)
		for _, c := range prog.Calls {
			sig, ok := signatures[c.Name]
			if !ok {
				res.Skipped++
				continue
			}
			ret, err := executeCall(p, c, sig, bindings)
			res.Executed++
			if err != sys.OK {
				res.Failures++
			}
			if c.Result >= 0 && err == sys.OK {
				bindings[c.Result] = int(ret)
			}
		}
	}
	return res
}

// argView decodes a call's arguments against its signature.
type argView struct {
	c        Call
	sig      []string
	bindings map[int]int
}

func (v argView) num(kind string) int64 {
	for i, k := range v.sig {
		if k == kind && i < len(v.c.Args) {
			a := v.c.Args[i]
			switch a.Kind {
			case KindConst:
				return a.Const
			case KindResult:
				if fd, ok := v.bindings[a.Ref]; ok {
					return int64(fd)
				}
				return -1
			}
		}
	}
	return 0
}

func (v argView) str(kind string) string {
	for i, k := range v.sig {
		if k == kind && i < len(v.c.Args) {
			if v.c.Args[i].Kind == KindString {
				return v.c.Args[i].Str
			}
		}
	}
	return ""
}

func (v argView) fd(kind string) int {
	n := v.num(kind)
	if kind == "dirfd" && int32(n) == sys.AT_FDCWD {
		return sys.AT_FDCWD
	}
	return int(n)
}

func executeCall(p *kernel.Proc, c Call, sig []string, bindings map[int]int) (int64, sys.Errno) {
	v := argView{c: c, sig: sig, bindings: bindings}
	switch c.Name {
	case "open":
		fd, e := p.Open(v.str("path"), int(v.num("flags")), uint32(v.num("mode")))
		return int64(fd), e
	case "openat":
		fd, e := p.Openat(v.fd("dirfd"), v.str("path"), int(v.num("flags")), uint32(v.num("mode")))
		return int64(fd), e
	case "creat":
		fd, e := p.Creat(v.str("path"), uint32(v.num("mode")))
		return int64(fd), e
	case "read":
		n, e := p.Read(v.fd("fd"), make([]byte, clampLen(v.num("count"))))
		return int64(n), e
	case "pread64":
		n, e := p.Pread64(v.fd("fd"), make([]byte, clampLen(v.num("count"))), v.num("offset"))
		return int64(n), e
	case "write":
		n, e := p.Write(v.fd("fd"), zeroBuf(clampLen(v.num("count"))))
		return int64(n), e
	case "pwrite64":
		n, e := p.Pwrite64(v.fd("fd"), zeroBuf(clampLen(v.num("count"))), v.num("offset"))
		return int64(n), e
	case "lseek":
		n, e := p.Lseek(v.fd("fd"), v.num("offset"), int(v.num("whence")))
		return n, e
	case "truncate":
		return 0, p.Truncate(v.str("path"), v.num("length"))
	case "ftruncate":
		return 0, p.Ftruncate(v.fd("fd"), v.num("length"))
	case "mkdir":
		return 0, p.Mkdir(v.str("path"), uint32(v.num("mode")))
	case "mkdirat":
		return 0, p.Mkdirat(v.fd("dirfd"), v.str("path"), uint32(v.num("mode")))
	case "chmod":
		return 0, p.Chmod(v.str("path"), uint32(v.num("mode")))
	case "fchmod":
		return 0, p.Fchmod(v.fd("fd"), uint32(v.num("mode")))
	case "fchmodat":
		return 0, p.Fchmodat(v.fd("dirfd"), v.str("path"), uint32(v.num("mode")), int(v.num("aflags")))
	case "close":
		return 0, p.Close(v.fd("fd"))
	case "chdir":
		return 0, p.Chdir(v.str("path"))
	case "fchdir":
		return 0, p.Fchdir(v.fd("fd"))
	case "setxattr":
		return 0, p.Setxattr(v.str("path"), v.str("name"), zeroBuf(clampLen(v.num("size"))), int(v.num("xflags")))
	case "lsetxattr":
		return 0, p.Lsetxattr(v.str("path"), v.str("name"), zeroBuf(clampLen(v.num("size"))), int(v.num("xflags")))
	case "fsetxattr":
		return 0, p.Fsetxattr(v.fd("fd"), v.str("name"), zeroBuf(clampLen(v.num("size"))), int(v.num("xflags")))
	case "getxattr":
		n, e := p.Getxattr(v.str("path"), v.str("name"), make([]byte, clampLen(v.num("size"))))
		return int64(n), e
	case "lgetxattr":
		n, e := p.Lgetxattr(v.str("path"), v.str("name"), make([]byte, clampLen(v.num("size"))))
		return int64(n), e
	case "fgetxattr":
		n, e := p.Fgetxattr(v.fd("fd"), v.str("name"), make([]byte, clampLen(v.num("size"))))
		return int64(n), e
	default:
		panic(fmt.Sprintf("syz: signature table and executor out of sync for %s", c.Name))
	}
}

// MaxDataLen is the executor's buffer-size bound (a real executor's mmap'd
// arena bound): fuzzer-supplied counts above it — and negative counts,
// which clamp to zero — cannot be expressed as an allocated buffer, so the
// traced count of a buffer-length argument never exceeds the 2^26 bucket.
// This is the irreducible untested-partition floor internal/evolve
// documents for read.count/write.count-style spaces.
const MaxDataLen = 1 << 26 // 64 MiB arena

// clampLen bounds fuzzer-supplied buffer sizes to something allocatable;
// the traced count argument uses the clamped value.
func clampLen(n int64) int64 {
	if n < 0 {
		return 0
	}
	if n > MaxDataLen {
		return MaxDataLen
	}
	return n
}

// zeroBuf returns an n-byte all-zero buffer sliced from the process-wide
// shared zero arena. Strictly read-only: only write-side payloads (write,
// pwrite64, setxattr values — all copied by the kernel before it returns)
// may use it; read-side buffers are written by the kernel and must stay
// private allocations.
func zeroBuf(n int64) []byte {
	return workload.NewSharedBuf(n).Get(n)
}
