package syz

import (
	"strings"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// allSyscallsProgram exercises every entry in the signature table exactly
// once, pinning the table and the executor to each other (a mismatch
// panics in executeCall).
const allSyscallsProgram = `
r0 = open(&(0x7f00)='/f\x00', 0x42, 0x1b6)
write(r0, &(0x7f00)="00", 0x40)
pwrite64(r0, &(0x7f00)="00", 0x10, 0x100)
lseek(r0, 0x0, 0x0)
read(r0, &(0x7f00), 0x20)
pread64(r0, &(0x7f00), 0x20, 0x0)
ftruncate(r0, 0x80)
fchmod(r0, 0x1a4)
fsetxattr(r0, &(0x7f00)='user.f\x00', &(0x7f00)="00", 0x8, 0x0)
fgetxattr(r0, &(0x7f00)='user.f\x00', &(0x7f00), 0x20)
close(r0)
r1 = openat(0xffffffffffffff9c, &(0x7f00)='/g\x00', 0x42, 0x1b6)
close(r1)
r2 = creat(&(0x7f00)='/h\x00', 0x1b6)
close(r2)
truncate(&(0x7f00)='/f\x00', 0x40)
mkdir(&(0x7f00)='/d\x00', 0x1ed)
mkdirat(0xffffffffffffff9c, &(0x7f00)='/d2\x00', 0x1ed)
chmod(&(0x7f00)='/f\x00', 0x180)
fchmodat(0xffffffffffffff9c, &(0x7f00)='/f\x00', 0x1a4, 0x0)
chdir(&(0x7f00)='/d\x00')
chdir(&(0x7f00)='/\x00')
r3 = open(&(0x7f00)='/d\x00', 0x10000, 0x0)
fchdir(r3)
close(r3)
chdir(&(0x7f00)='/\x00')
setxattr(&(0x7f00)='/f\x00', &(0x7f00)='user.a\x00', &(0x7f00)="00", 0x10, 0x0)
lsetxattr(&(0x7f00)='/f\x00', &(0x7f00)='user.b\x00', &(0x7f00)="00", 0x10, 0x0)
getxattr(&(0x7f00)='/f\x00', &(0x7f00)='user.a\x00', &(0x7f00), 0x40)
lgetxattr(&(0x7f00)='/f\x00', &(0x7f00)='user.b\x00', &(0x7f00), 0x40)
`

func TestExecuteEverySignature(t *testing.T) {
	progs, err := Parse(strings.NewReader(allSyscallsProgram))
	if err != nil {
		t.Fatal(err)
	}
	// Every signature-table syscall appears in the program.
	seen := map[string]bool{}
	for _, p := range progs {
		for _, c := range p.Calls {
			seen[c.Name] = true
		}
	}
	missing := 0
	for name := range signatures {
		if name == "readv" || name == "writev" {
			continue // vector calls have no syzlang form here
		}
		if !seen[name] {
			t.Errorf("signature %s not exercised by the pin program", name)
			missing++
		}
	}
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: an})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	res := Execute(p, progs)
	if res.Skipped != 0 {
		t.Errorf("skipped %d calls", res.Skipped)
	}
	if res.Failures != 0 {
		t.Errorf("%d calls failed", res.Failures)
	}
	// All 11 base syscalls got coverage.
	if got := len(an.Syscalls()); got != 11 {
		t.Errorf("observed %d base syscalls, want 11 (%v)", got, an.Syscalls())
	}
	// Filesystem side effects are real.
	if st, e := p.Stat("/f"); e != sys.OK || st.Size != 0x40 {
		t.Errorf("final /f = %+v, %v", st, e)
	}
	if st, e := p.Stat("/d2"); e != sys.OK || st.Type != vfs.TypeDir {
		t.Errorf("mkdirat result = %+v, %v", st, e)
	}
}

// TestConvertEverySignature pins static conversion the same way.
func TestConvertEverySignature(t *testing.T) {
	progs, err := Parse(strings.NewReader(allSyscallsProgram))
	if err != nil {
		t.Fatal(err)
	}
	events, skipped := Convert(progs)
	if skipped != 0 {
		t.Errorf("skipped %d", skipped)
	}
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	an.AddAll(events)
	if got := len(an.Syscalls()); got != 11 {
		t.Errorf("static conversion observed %d base syscalls (%v)", got, an.Syscalls())
	}
	// Arg keys land where the analyzer expects: spot-check several.
	if an.Input("truncate", "length").Count("2^6") != 1 {
		t.Errorf("truncate.length = %v", an.Input("truncate", "length").Counts)
	}
	if an.Input("chmod", "mode") == nil {
		t.Error("chmod.mode missing")
	}
	if an.Input("getxattr", "size").Count("2^6") != 2 {
		t.Errorf("getxattr.size = %v", an.Input("getxattr", "size").Counts)
	}
	if an.Input("read", "pos").Count("=0") != 1 {
		t.Errorf("pread pos = %v", an.Input("read", "pos").Counts)
	}
}
