package syz

import (
	"fmt"
	"math/rand"

	"iocov/internal/sys"
)

// GenConfig parameterizes the corpus generator — the stand-in for a
// syscall fuzzer (the paper's §6 plans to evaluate Syzkaller-class tools
// with IOCov).
type GenConfig struct {
	// Programs is the corpus size.
	Programs int
	// MaxCalls bounds calls per program (min 2: an open plus one op).
	MaxCalls int
	// Seed drives generation.
	Seed int64
	// Dir is the directory path prefix used in generated programs.
	Dir string
}

// Generate produces a deterministic pseudo-random corpus in the mutational
// style of a syscall fuzzer: each program opens files, then mutates them
// through descriptor- and path-based calls with heavily skewed constants
// (fuzzers favour small magic values, powers of two, and boundary
// constants).
func Generate(cfg GenConfig) []Program {
	if cfg.Programs <= 0 {
		cfg.Programs = 100
	}
	if cfg.MaxCalls < 2 {
		cfg.MaxCalls = 8
	}
	if cfg.Dir == "" {
		cfg.Dir = "/fuzz"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	progs := make([]Program, 0, cfg.Programs)
	for i := 0; i < cfg.Programs; i++ {
		progs = append(progs, genProgram(rng, cfg, i))
	}
	return progs
}

// fuzzer-favoured numeric constants: boundaries and magic sizes.
var magicSizes = []int64{
	0, 1, 2, 3, 4, 7, 8, 9, 16, 255, 256, 511, 512, 1023, 1024,
	4095, 4096, 4097, 65535, 65536, 1 << 20, 1<<20 + 1,
}

func pickSize(rng *rand.Rand) int64 {
	if rng.Intn(4) == 0 {
		return rng.Int63n(1 << 16)
	}
	return magicSizes[rng.Intn(len(magicSizes))]
}

var fuzzFlags = []int64{
	sys.O_RDONLY, sys.O_WRONLY, sys.O_RDWR,
	sys.O_CREAT, sys.O_EXCL, sys.O_TRUNC, sys.O_APPEND, sys.O_NONBLOCK,
	sys.O_SYNC, sys.O_DSYNC, sys.O_DIRECT, sys.O_NOFOLLOW, sys.O_CLOEXEC,
	sys.O_NOATIME, sys.O_LARGEFILE, sys.O_PATH, sys.O_DIRECTORY, sys.O_NOCTTY,
}

func pickFlags(rng *rand.Rand) int64 {
	f := fuzzFlags[rng.Intn(3)] // access mode
	n := rng.Intn(4)
	for j := 0; j < n; j++ {
		f |= fuzzFlags[3+rng.Intn(len(fuzzFlags)-3)]
	}
	return f
}

func genProgram(rng *rand.Rand, cfg GenConfig, idx int) Program {
	var p Program
	path := fmt.Sprintf("%s/file%d", cfg.Dir, idx%8)
	// Leading open with a result binding, syzkaller style.
	p.Calls = append(p.Calls, Call{
		Result: 0,
		Name:   "openat",
		Args: []Arg{
			{Kind: KindConst, Const: -0x64}, // AT_FDCWD as syzkaller prints it (0xffffffffffffff9c)
			{Kind: KindString, Str: path},
			{Kind: KindConst, Const: sys.O_CREAT | sys.O_RDWR},
			{Kind: KindConst, Const: 0o644},
		},
	})
	nCalls := 1 + rng.Intn(cfg.MaxCalls-1)
	for j := 0; j < nCalls; j++ {
		p.Calls = append(p.Calls, genCall(rng, cfg, idx))
	}
	p.Calls = append(p.Calls, Call{Result: -1, Name: "close",
		Args: []Arg{{Kind: KindResult, Ref: 0}}})
	return p
}

func genCall(rng *rand.Rand, cfg GenConfig, idx int) Call {
	path := fmt.Sprintf("%s/file%d", cfg.Dir, rng.Intn(8))
	fd := Arg{Kind: KindResult, Ref: 0}
	c := Arg{Kind: KindConst}
	switch rng.Intn(12) {
	case 0:
		return Call{Result: -1, Name: "write", Args: []Arg{fd,
			{Kind: KindData, DataLen: 2}, {Kind: KindConst, Const: pickSize(rng)}}}
	case 1:
		return Call{Result: -1, Name: "read", Args: []Arg{fd,
			{Kind: KindData}, {Kind: KindConst, Const: pickSize(rng)}}}
	case 2:
		return Call{Result: -1, Name: "pwrite64", Args: []Arg{fd,
			{Kind: KindData, DataLen: 2}, {Kind: KindConst, Const: pickSize(rng)},
			{Kind: KindConst, Const: pickSize(rng)}}}
	case 3:
		c.Const = pickSize(rng)
		return Call{Result: -1, Name: "lseek", Args: []Arg{fd, c,
			{Kind: KindConst, Const: int64(rng.Intn(6))}}}
	case 4:
		c.Const = pickSize(rng)
		return Call{Result: -1, Name: "ftruncate", Args: []Arg{fd, c}}
	case 5:
		c.Const = pickSize(rng)
		return Call{Result: -1, Name: "truncate", Args: []Arg{
			{Kind: KindString, Str: path}, c}}
	case 6:
		return Call{Result: -1, Name: "mkdir", Args: []Arg{
			{Kind: KindString, Str: fmt.Sprintf("%s/dir%d", cfg.Dir, rng.Intn(64))},
			{Kind: KindConst, Const: int64(rng.Intn(0o1000))}}}
	case 7:
		return Call{Result: -1, Name: "chmod", Args: []Arg{
			{Kind: KindString, Str: path},
			{Kind: KindConst, Const: int64(rng.Intn(0o10000))}}}
	case 8:
		return Call{Result: -1, Name: "setxattr", Args: []Arg{
			{Kind: KindString, Str: path},
			{Kind: KindString, Str: fmt.Sprintf("user.f%d", rng.Intn(4))},
			{Kind: KindData, DataLen: 2},
			{Kind: KindConst, Const: pickSize(rng) % (1 << 16)},
			{Kind: KindConst, Const: int64(rng.Intn(3))}}}
	case 9:
		return Call{Result: -1, Name: "getxattr", Args: []Arg{
			{Kind: KindString, Str: path},
			{Kind: KindString, Str: fmt.Sprintf("user.f%d", rng.Intn(4))},
			{Kind: KindData},
			{Kind: KindConst, Const: pickSize(rng) % (1 << 16)}}}
	case 10:
		return Call{Result: -1, Name: "open", Args: []Arg{
			{Kind: KindString, Str: path},
			{Kind: KindConst, Const: pickFlags(rng)},
			{Kind: KindConst, Const: int64(rng.Intn(0o1000))}}}
	default:
		return Call{Result: -1, Name: "fchmod", Args: []Arg{fd,
			{Kind: KindConst, Const: int64(rng.Intn(0o10000))}}}
	}
}
