package syz

import (
	"bytes"
	"strings"
	"testing"

	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// TestGenerateRoundTrip is the corpus format's property test: every
// generated program survives Format -> Parse -> Format unchanged, so a
// corpus written to disk and read back is the same corpus.
func TestGenerateRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 77} {
		progs := Generate(GenConfig{Programs: 50, Seed: seed})
		var buf bytes.Buffer
		if err := WritePrograms(&buf, progs); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("seed %d: corpus does not reparse: %v", seed, err)
		}
		if len(back) != len(progs) {
			t.Fatalf("seed %d: reparsed %d of %d programs", seed, len(back), len(progs))
		}
		for i := range progs {
			if progs[i].Format() != back[i].Format() {
				t.Fatalf("seed %d: program %d does not round-trip", seed, i)
			}
		}
	}
}

// TestGenerateExecutesWithoutPanic: the generated corpus — including its
// hostile constants — executes against the simulated kernel cleanly.
func TestGenerateExecutesWithoutPanic(t *testing.T) {
	progs := Generate(GenConfig{Programs: 100, Seed: 9, Dir: "/fuzz"})
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	if e := p.Mkdir("/fuzz", 0o777); e != sys.OK {
		t.Fatal(e)
	}
	res := Execute(p, progs)
	if res.Executed == 0 {
		t.Fatal("nothing executed")
	}
	if res.Skipped != 0 {
		t.Errorf("generator emitted %d calls the executor does not know", res.Skipped)
	}
}

// TestClone: deep copy — mutating a clone's args never reaches the
// original.
func TestClone(t *testing.T) {
	orig := Generate(GenConfig{Programs: 1, Seed: 1})[0]
	want := orig.Format()
	c := orig.Clone()
	for i := range c.Calls {
		for j := range c.Calls[i].Args {
			c.Calls[i].Args[j] = Arg{Kind: KindConst, Const: -999}
		}
		c.Calls[i].Name = "nope"
	}
	if orig.Format() != want {
		t.Fatal("mutating a clone changed the original")
	}
}

// TestWriteProgramsBlankLineSeparated: the on-disk form keeps programs
// separated so Parse sees the same program boundaries.
func TestWriteProgramsBlankLineSeparated(t *testing.T) {
	progs := Generate(GenConfig{Programs: 3, Seed: 5})
	var buf bytes.Buffer
	if err := WritePrograms(&buf, progs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n\n"); got != len(progs)-1 {
		t.Errorf("%d blank-line separators for %d programs", got, len(progs))
	}
}
