package syz

import (
	"fmt"

	"iocov/internal/coverage"
	"iocov/internal/partition"
	"iocov/internal/sys"
)

// Suggest closes IOCov's feedback loop: given a suite's coverage, it
// generates runnable syzkaller-style programs that probe the untested input
// partitions — one program per finding, readable enough to hand to a test
// developer and executable against the simulated kernel (Execute) to
// verify the gap closes.
//
// dir is the directory the probes operate in; max bounds the number of
// programs (0 means no bound). The full candidate set is always built
// before the bound is applied, and truncated reports whether the bound
// dropped any programs — a bound hit mid-section used to silently swallow
// every later section (numeric probes, lseek whence) with no signal.
func Suggest(an *coverage.Analyzer, dir string, max int) (progs []Program, truncated bool) {
	if dir == "" {
		dir = "/probe"
	}
	add := func(p Program) {
		progs = append(progs, p)
	}

	// Untested open flags: open a scratch file with each one.
	if rep := an.InputReport("open", "flags"); rep != nil {
		for _, label := range rep.Untested() {
			bits, ok := sys.EncodeOpenFlags([]string{label})
			if !ok {
				continue
			}
			flags := bits
			switch label {
			case "O_WRONLY", "O_RDWR":
				// access modes stand alone
			case "O_DIRECTORY", "O_TMPFILE", "O_PATH":
				// directory-target flags probe the directory itself
			default:
				flags |= sys.O_CREAT
			}
			target := dir + "/flagprobe"
			if bits&(sys.O_DIRECTORY|sys.O_TMPFILE|sys.O_PATH) != 0 {
				target = dir
			}
			if bits&sys.O_TMPFILE != 0 {
				flags |= sys.O_RDWR
			}
			add(Program{Calls: []Call{
				openCall(0, target, flags, 0o644),
				{Result: -1, Name: "close", Args: []Arg{{Kind: KindResult, Ref: 0}}},
			}})
		}
	}

	// Untested numeric partitions: probe the bucket's boundary value.
	numeric := []struct {
		syscall, arg string
		maxLog2      int
		build        func(size int64) Program
	}{
		{"write", "count", 26, func(size int64) Program {
			return Program{Calls: []Call{
				openCall(0, dir+"/wprobe", sys.O_CREAT|sys.O_RDWR, 0o644),
				{Result: -1, Name: "write", Args: []Arg{
					{Kind: KindResult, Ref: 0}, {Kind: KindData, DataLen: 2},
					{Kind: KindConst, Const: size}}},
				{Result: -1, Name: "close", Args: []Arg{{Kind: KindResult, Ref: 0}}},
			}}
		}},
		{"read", "count", 26, func(size int64) Program {
			return Program{Calls: []Call{
				openCall(0, dir+"/rprobe", sys.O_CREAT|sys.O_RDWR, 0o644),
				{Result: -1, Name: "read", Args: []Arg{
					{Kind: KindResult, Ref: 0}, {Kind: KindData},
					{Kind: KindConst, Const: size}}},
				{Result: -1, Name: "close", Args: []Arg{{Kind: KindResult, Ref: 0}}},
			}}
		}},
		{"truncate", "length", 33, func(size int64) Program {
			return Program{Calls: []Call{
				openCall(0, dir+"/tprobe", sys.O_CREAT|sys.O_WRONLY, 0o644),
				{Result: -1, Name: "close", Args: []Arg{{Kind: KindResult, Ref: 0}}},
				{Result: -1, Name: "truncate", Args: []Arg{
					{Kind: KindString, Str: dir + "/tprobe"},
					{Kind: KindConst, Const: size}}},
			}}
		}},
		{"setxattr", "size", 16, func(size int64) Program {
			return Program{Calls: []Call{
				openCall(0, dir+"/xprobe", sys.O_CREAT|sys.O_WRONLY, 0o644),
				{Result: -1, Name: "close", Args: []Arg{{Kind: KindResult, Ref: 0}}},
				{Result: -1, Name: "setxattr", Args: []Arg{
					{Kind: KindString, Str: dir + "/xprobe"},
					{Kind: KindString, Str: "user.probe"},
					{Kind: KindData, DataLen: 2},
					{Kind: KindConst, Const: size},
					{Kind: KindConst, Const: 0}}},
			}}
		}},
	}
	for _, n := range numeric {
		rep := an.InputReport(n.syscall, n.arg)
		if rep == nil {
			continue
		}
		for _, label := range rep.Untested() {
			size, ok := boundaryFromPartitionLabel(label, n.maxLog2)
			if !ok {
				continue
			}
			add(n.build(size))
		}
	}

	// Untested lseek whence values.
	if rep := an.InputReport("lseek", "whence"); rep != nil {
		for _, label := range rep.Untested() {
			w := whenceValue(label)
			if w < 0 {
				continue
			}
			add(Program{Calls: []Call{
				openCall(0, dir+"/sprobe", sys.O_CREAT|sys.O_RDWR, 0o644),
				{Result: -1, Name: "write", Args: []Arg{
					{Kind: KindResult, Ref: 0}, {Kind: KindData, DataLen: 2},
					{Kind: KindConst, Const: 4096}}},
				{Result: -1, Name: "lseek", Args: []Arg{
					{Kind: KindResult, Ref: 0},
					{Kind: KindConst, Const: 16},
					{Kind: KindConst, Const: int64(w)}}},
				{Result: -1, Name: "close", Args: []Arg{{Kind: KindResult, Ref: 0}}},
			}})
		}
	}
	if max > 0 && len(progs) > max {
		progs = progs[:max]
		truncated = true
	}
	return progs, truncated
}

func openCall(result int, path string, flags int, mode uint32) Call {
	return Call{
		Result: result,
		Name:   "openat",
		Args: []Arg{
			{Kind: KindConst, Const: sys.AT_FDCWD},
			{Kind: KindString, Str: path},
			{Kind: KindConst, Const: int64(flags)},
			{Kind: KindConst, Const: int64(mode)},
		},
	}
}

func boundaryFromPartitionLabel(label string, maxLog2 int) (int64, bool) {
	if label == partition.LabelZero {
		return 0, true
	}
	var k int
	if _, err := fmt.Sscanf(label, "2^%d", &k); err != nil {
		return 0, false
	}
	if k < 0 || k > maxLog2 {
		return 0, false
	}
	return int64(1) << uint(k), true
}

func whenceValue(label string) int {
	for i, name := range sys.WhenceNames {
		if name == label {
			return i
		}
	}
	return -1
}
