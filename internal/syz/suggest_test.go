package syz

import (
	"strings"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// narrowWorkload mimics a weak test suite: one open mode, one write size.
func narrowWorkload(p *kernel.Proc) {
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	_, _ = p.Write(fd, make([]byte, 4096))
	_, _ = p.Lseek(fd, 0, sys.SEEK_SET)
	_, _ = p.Read(fd, make([]byte, 4096))
	_ = p.Setxattr("/f", "user.a", make([]byte, 16), 0)
	_ = p.Truncate("/f", 100)
	_ = p.Close(fd)
}

func measuredAnalyzer(t *testing.T, w func(*kernel.Proc)) (*coverage.Analyzer, *kernel.Kernel) {
	t.Helper()
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: an})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	w(p)
	return an, k
}

func TestSuggestProducesParsablePrograms(t *testing.T) {
	an, _ := measuredAnalyzer(t, narrowWorkload)
	progs, truncated := Suggest(an, "/probe", 0)
	if len(progs) < 20 {
		t.Fatalf("only %d suggestions for a narrow workload", len(progs))
	}
	if truncated {
		t.Error("unbounded Suggest reported truncation")
	}
	// Every suggestion is valid syzlang: it round-trips through the
	// parser.
	var text strings.Builder
	for _, p := range progs {
		text.WriteString(p.Format())
		text.WriteByte('\n')
	}
	back, err := Parse(strings.NewReader(text.String()))
	if err != nil {
		t.Fatalf("suggestions do not reparse: %v", err)
	}
	if len(back) != len(progs) {
		t.Errorf("reparsed %d of %d", len(back), len(progs))
	}
}

func TestSuggestMaxBound(t *testing.T) {
	an, _ := measuredAnalyzer(t, narrowWorkload)
	all, truncated := Suggest(an, "", 0)
	if truncated {
		t.Fatal("unbounded Suggest reported truncation")
	}
	progs, truncated := Suggest(an, "", 5)
	if len(progs) != 5 {
		t.Errorf("max ignored: %d programs", len(progs))
	}
	if !truncated {
		t.Error("bound dropped programs but truncated not reported")
	}
	// The bound slices the full candidate set; it must not change which
	// probes come first (a mid-build early return used to silently swallow
	// whole later sections).
	for i := range progs {
		if progs[i].Format() != all[i].Format() {
			t.Errorf("bounded probe %d differs from unbounded prefix", i)
		}
	}
	// A bound equal to (or above) the candidate count is not a truncation.
	exact, truncated := Suggest(an, "", len(all))
	if truncated {
		t.Errorf("max == len reported truncation")
	}
	if len(exact) != len(all) {
		t.Errorf("max == len returned %d of %d", len(exact), len(all))
	}
}

// TestSuggestClosesCoverageGaps is the full feedback loop: measure a weak
// suite, generate probes for its untested partitions, execute them, and
// verify coverage strictly improves in every targeted dimension.
func TestSuggestClosesCoverageGaps(t *testing.T) {
	an, k := measuredAnalyzer(t, narrowWorkload)

	before := map[string]int{
		"open.flags":      an.InputReport("open", "flags").Covered(),
		"write.count":     an.InputReport("write", "count").Covered(),
		"setxattr.size":   an.InputReport("setxattr", "size").Covered(),
		"lseek.whence":    an.InputReport("lseek", "whence").Covered(),
		"truncate.length": an.InputReport("truncate", "length").Covered(),
	}

	progs, _ := Suggest(an, "/probe", 0)
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	if e := p.Mkdir("/probe", 0o777); e != sys.OK {
		t.Fatal(e)
	}
	res := Execute(p, progs)
	if res.Executed == 0 {
		t.Fatal("no probe calls executed")
	}

	after := map[string]int{
		"open.flags":      an.InputReport("open", "flags").Covered(),
		"write.count":     an.InputReport("write", "count").Covered(),
		"setxattr.size":   an.InputReport("setxattr", "size").Covered(),
		"lseek.whence":    an.InputReport("lseek", "whence").Covered(),
		"truncate.length": an.InputReport("truncate", "length").Covered(),
	}
	for dim, b := range before {
		if after[dim] <= b {
			t.Errorf("%s coverage did not improve: %d -> %d", dim, b, after[dim])
		}
	}
	// Open flags become fully covered (every flag is generatable).
	if got := an.InputReport("open", "flags").Covered(); got != 20 {
		t.Errorf("open flags after probes = %d/20", got)
	}
	// Whence becomes fully covered except the invalid marker.
	if got := an.InputReport("lseek", "whence").Covered(); got < 5 {
		t.Errorf("whence after probes = %d", got)
	}
}

func TestSuggestOnEmptyAnalyzer(t *testing.T) {
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	if progs, _ := Suggest(an, "", 0); len(progs) != 0 {
		t.Errorf("suggestions without any coverage: %d", len(progs))
	}
}
