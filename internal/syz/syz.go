// Package syz implements the paper's future-work path for evaluating
// fuzzers (§6): "Syzkaller logs syscalls with declarative descriptions,
// which need to be parsed by IOCov."
//
// The package understands a syzlang-style program format:
//
//	r0 = openat(0xffffffffffffff9c, &(0x7f0000000040)='./file0\x00', 0x42, 0x1ed)
//	write(r0, &(0x7f0000000080)="aa", 0x1000)
//	lseek(r0, 0x200, 0x0)
//	close(r0)
//
// and offers two ways to turn programs into IOCov coverage:
//
//   - static conversion (Convert): each call becomes a trace event carrying
//     its arguments; returns are unknown, so only input coverage is
//     measured — what a fuzzer's corpus alone can tell you;
//   - execution (Executor): the program runs against the simulated kernel,
//     binding r-values to real descriptors, which yields full input AND
//     output coverage.
//
// A corpus generator (Generate) plays the role of the fuzzer itself, so the
// whole fuzzer-evaluation pipeline can run hermetically.
package syz

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Arg is one parsed syscall argument.
type Arg struct {
	// Kind discriminates the union below.
	Kind ArgKind
	// Const holds the numeric value for KindConst.
	Const int64
	// Ref holds the r-index for KindResult (r3 -> 3).
	Ref int
	// Str holds the string literal for KindString (NUL stripped).
	Str string
	// DataLen holds the byte length for KindData.
	DataLen int64
}

// ArgKind enumerates argument forms in the log format.
type ArgKind int

// Argument kinds.
const (
	// KindConst is a hex or decimal constant: 0x42, 12.
	KindConst ArgKind = iota
	// KindResult is a reference to a prior call's result: r0.
	KindResult
	// KindString is a pointer to a string literal: &(0x7f..)='path\x00'.
	KindString
	// KindData is a pointer to a data blob: &(0x7f..)="hexbytes".
	KindData
)

// Call is one parsed syscall invocation.
type Call struct {
	// Result is the bound result index (r0 -> 0), or -1 when unbound.
	Result int
	// Name is the raw syscall name ("openat").
	Name string
	// Args are the parsed arguments in order.
	Args []Arg
}

// Program is one syzkaller program: a sequence of calls sharing r-bindings.
type Program struct {
	Calls []Call
}

// Clone returns a deep copy of the program: mutating the copy's calls or
// arguments never aliases the original. The mutation operators in
// internal/evolve clone before editing so corpus programs stay immutable.
func (p Program) Clone() Program {
	out := Program{Calls: make([]Call, len(p.Calls))}
	for i, c := range p.Calls {
		cc := c
		cc.Args = append([]Arg(nil), c.Args...)
		out.Calls[i] = cc
	}
	return out
}

// ParseError reports a malformed program line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("syz: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse reads programs from r. Programs are separated by blank lines;
// '#' starts a comment line.
func Parse(r io.Reader) ([]Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var progs []Program
	var cur Program
	lineNo := 0
	flush := func() {
		if len(cur.Calls) > 0 {
			progs = append(progs, cur)
			cur = Program{}
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			flush()
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		call, err := parseCall(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		cur.Calls = append(cur.Calls, call)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return progs, nil
}

func parseCall(line string) (Call, error) {
	call := Call{Result: -1}
	rest := line
	// Optional "rN = " binding.
	if strings.HasPrefix(rest, "r") {
		if eq := strings.Index(rest, " = "); eq > 0 {
			idxStr := rest[1:eq]
			if idx, err := strconv.Atoi(idxStr); err == nil {
				call.Result = idx
				rest = rest[eq+3:]
			}
		}
	}
	open := strings.IndexByte(rest, '(')
	if open <= 0 || !strings.HasSuffix(rest, ")") {
		return call, fmt.Errorf("missing call syntax")
	}
	call.Name = strings.TrimSpace(rest[:open])
	if call.Name == "" {
		return call, fmt.Errorf("empty syscall name")
	}
	argStr := rest[open+1 : len(rest)-1]
	args, err := parseArgs(argStr)
	if err != nil {
		return call, err
	}
	call.Args = args
	return call, nil
}

func parseArgs(s string) ([]Arg, error) {
	var args []Arg
	s = strings.TrimSpace(s)
	for s != "" {
		tok, rest, err := nextArgToken(s)
		if err != nil {
			return nil, err
		}
		arg, err := parseArg(tok)
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
		s = strings.TrimSpace(rest)
	}
	return args, nil
}

// nextArgToken splits off one top-level comma-separated token, respecting
// quotes and parentheses.
func nextArgToken(s string) (token, rest string, err error) {
	depth := 0
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == '\\' {
				i++
			} else if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth < 0 {
				return "", "", fmt.Errorf("unbalanced parentheses")
			}
		case c == ',' && depth == 0:
			return strings.TrimSpace(s[:i]), s[i+1:], nil
		}
	}
	if quote != 0 {
		return "", "", fmt.Errorf("unterminated quote")
	}
	if depth != 0 {
		return "", "", fmt.Errorf("unbalanced parentheses")
	}
	return strings.TrimSpace(s), "", nil
}

func parseArg(tok string) (Arg, error) {
	switch {
	case strings.HasPrefix(tok, "r"):
		if idx, err := strconv.Atoi(tok[1:]); err == nil {
			return Arg{Kind: KindResult, Ref: idx}, nil
		}
		return Arg{}, fmt.Errorf("bad result reference %q", tok)
	case strings.HasPrefix(tok, "&("):
		// Pointer form: &(0xADDR)='str\x00' or &(0xADDR)="hex" or a bare
		// address &(0xADDR).
		close := strings.Index(tok, ")")
		if close < 0 {
			return Arg{}, fmt.Errorf("bad pointer %q", tok)
		}
		payload := tok[close+1:]
		payload = strings.TrimPrefix(payload, "=")
		switch {
		case payload == "":
			return Arg{Kind: KindData, DataLen: 0}, nil
		case payload[0] == '\'':
			str, err := unquoteSyz(payload)
			if err != nil {
				return Arg{}, err
			}
			return Arg{Kind: KindString, Str: str}, nil
		case payload[0] == '"':
			inner := strings.Trim(payload, `"`)
			return Arg{Kind: KindData, DataLen: int64(len(inner) / 2)}, nil
		default:
			return Arg{}, fmt.Errorf("bad pointer payload %q", payload)
		}
	case strings.HasPrefix(tok, "0x") || strings.HasPrefix(tok, "0X"):
		// Syzkaller prints 64-bit constants like 0xffffffffffffff9c
		// (AT_FDCWD); parse unsigned then reinterpret.
		u, err := strconv.ParseUint(tok[2:], 16, 64)
		if err != nil {
			return Arg{}, fmt.Errorf("bad hex constant %q", tok)
		}
		return Arg{Kind: KindConst, Const: int64(u)}, nil
	default:
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return Arg{}, fmt.Errorf("bad argument %q", tok)
		}
		return Arg{Kind: KindConst, Const: n}, nil
	}
}

// unquoteSyz parses the syzkaller string form './file0\x00'.
func unquoteSyz(s string) (string, error) {
	if len(s) < 2 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return "", fmt.Errorf("bad string literal %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		if i+1 >= len(body) {
			return "", fmt.Errorf("trailing backslash in %q", s)
		}
		i++
		switch body[i] {
		case 'x':
			if i+2 >= len(body) {
				return "", fmt.Errorf("bad hex escape in %q", s)
			}
			v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
			if err != nil {
				return "", fmt.Errorf("bad hex escape in %q", s)
			}
			i += 2
			if v != 0 { // NUL terminators are stripped
				b.WriteByte(byte(v))
			}
		case '\\':
			b.WriteByte('\\')
		case '\'':
			b.WriteByte('\'')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// Format renders a program back to the log format (the inverse of Parse,
// modulo pointer addresses, which are synthesized).
func (p Program) Format() string {
	var b strings.Builder
	addr := int64(0x7f0000000000)
	for _, c := range p.Calls {
		if c.Result >= 0 {
			fmt.Fprintf(&b, "r%d = ", c.Result)
		}
		b.WriteString(c.Name)
		b.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			switch a.Kind {
			case KindConst:
				fmt.Fprintf(&b, "%#x", uint64(a.Const))
			case KindResult:
				fmt.Fprintf(&b, "r%d", a.Ref)
			case KindString:
				fmt.Fprintf(&b, "&(%#x)='%s\\x00'", addr, escapeSyz(a.Str))
				addr += 0x40
			case KindData:
				fmt.Fprintf(&b, "&(%#x)=\"%s\"", addr, strings.Repeat("00", int(a.DataLen)))
				addr += 0x40
			}
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// WritePrograms renders programs blank-line separated — the corpus-file
// form Parse reads back. WritePrograms then Parse round-trips exactly
// (modulo synthesized pointer addresses, which Parse discards anyway).
func WritePrograms(w io.Writer, progs []Program) error {
	for i, p := range progs {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, p.Format()); err != nil {
			return err
		}
	}
	return nil
}

func escapeSyz(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20 || c > 0x7e:
			fmt.Fprintf(&b, "\\x%02x", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
