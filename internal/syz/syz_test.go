package syz

import (
	"strings"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

const sampleLog = `
r0 = openat(0xffffffffffffff9c, &(0x7f0000000040)='./file0\x00', 0x42, 0x1ed)
write(r0, &(0x7f0000000080)="aabb", 0x1000)
lseek(r0, 0x200, 0x0)
close(r0)

# a second program
r0 = open(&(0x7f0000000000)='/tmp/x\x00', 0x0, 0x0)
read(r0, &(0x7f0000000100), 0x80)
close(r0)
`

func TestParseSampleLog(t *testing.T) {
	progs, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("parsed %d programs, want 2", len(progs))
	}
	p0 := progs[0]
	if len(p0.Calls) != 4 {
		t.Fatalf("program 0 has %d calls", len(p0.Calls))
	}
	open := p0.Calls[0]
	if open.Name != "openat" || open.Result != 0 {
		t.Errorf("call 0 = %+v", open)
	}
	if open.Args[0].Kind != KindConst || int32(open.Args[0].Const) != sys.AT_FDCWD {
		t.Errorf("dirfd arg = %+v", open.Args[0])
	}
	if open.Args[1].Kind != KindString || open.Args[1].Str != "./file0" {
		t.Errorf("path arg = %+v (NUL should be stripped)", open.Args[1])
	}
	if open.Args[2].Const != 0x42 || open.Args[3].Const != 0x1ed {
		t.Errorf("flags/mode = %+v", open.Args[2:])
	}
	w := p0.Calls[1]
	if w.Name != "write" || w.Args[0].Kind != KindResult || w.Args[0].Ref != 0 {
		t.Errorf("write call = %+v", w)
	}
	if w.Args[1].Kind != KindData || w.Args[1].DataLen != 2 {
		t.Errorf("data arg = %+v", w.Args[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"not a call",
		"open(",
		"open(0x",
		"open('unpointered')",
		`open(&(0x7f00)='unterminated)`,
		"write(rX, 0x1)",
		"open(&(0x7f00)=^bogus)",
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("no error for %q", line)
		}
	}
}

func TestParseEscapes(t *testing.T) {
	log := `open(&(0x7f00)='/a\'b\\c\x41\x00', 0x0, 0x0)`
	progs, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	got := progs[0].Calls[0].Args[0].Str
	if got != `/a'b\cA` {
		t.Errorf("unescaped path = %q", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	progs := Generate(GenConfig{Programs: 25, Seed: 3})
	for _, p := range progs {
		text := p.Format()
		back, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, text)
		}
		if len(back) != 1 || len(back[0].Calls) != len(p.Calls) {
			t.Fatalf("round trip changed call count:\n%s", text)
		}
		for i, c := range back[0].Calls {
			if c.Name != p.Calls[i].Name || c.Result != p.Calls[i].Result ||
				len(c.Args) != len(p.Calls[i].Args) {
				t.Fatalf("call %d changed: %+v vs %+v", i, c, p.Calls[i])
			}
		}
	}
}

func TestConvertStatic(t *testing.T) {
	progs, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	events, skipped := Convert(progs)
	if skipped != 0 {
		t.Errorf("skipped %d calls", skipped)
	}
	if len(events) != 7 {
		t.Fatalf("converted %d events, want 7", len(events))
	}
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	an.AddAll(events)
	// openat flags 0x42 = O_CREAT|O_RDWR.
	flags := an.Input("open", "flags")
	if flags.Count("O_CREAT") != 1 || flags.Count("O_RDWR") != 1 || flags.Count("O_RDONLY") != 1 {
		t.Errorf("flag counts = %v", flags.Counts)
	}
	// write count 0x1000 -> bucket 2^12.
	if an.Input("write", "count").Count("2^12") != 1 {
		t.Errorf("write counts = %v", an.Input("write", "count").Counts)
	}
	// lseek whence 0 -> SEEK_SET.
	if an.Input("lseek", "whence").Count("SEEK_SET") != 1 {
		t.Errorf("whence counts = %v", an.Input("lseek", "whence").Counts)
	}
}

func TestConvertSkipsUnknown(t *testing.T) {
	log := "io_uring_setup(0x1, &(0x7f00))\nopen(&(0x7f00)='/f\\x00', 0x0, 0x0)"
	progs, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	events, skipped := Convert(progs)
	if skipped != 1 || len(events) != 1 {
		t.Errorf("events=%d skipped=%d", len(events), skipped)
	}
}

func TestExecuteBindings(t *testing.T) {
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: an})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})

	log := `
r0 = open(&(0x7f00)='/f0\x00', 0x42, 0x1b6)
write(r0, &(0x7f00)="00", 0x100)
lseek(r0, 0x0, 0x0)
read(r0, &(0x7f00), 0x100)
ftruncate(r0, 0x50)
close(r0)
`
	progs, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(p, progs)
	if res.Executed != 6 || res.Skipped != 0 {
		t.Fatalf("executed=%d skipped=%d", res.Executed, res.Skipped)
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d", res.Failures)
	}
	// Full output coverage: the read returned real bytes.
	read := an.Output("read")
	if read.Count("OK:2^8") != 1 {
		t.Errorf("read outputs = %v", read.Counts)
	}
	// State really changed.
	if st, e := p.Stat("/f0"); e != sys.OK || st.Size != 0x50 {
		t.Errorf("stat = %+v, %v", st, e)
	}
}

func TestExecuteFailuresAreCounted(t *testing.T) {
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	log := "open(&(0x7f00)='/missing\\x00', 0x0, 0x0)"
	progs, _ := Parse(strings.NewReader(log))
	res := Execute(p, progs)
	if res.Failures != 1 {
		t.Errorf("failures = %d, want 1", res.Failures)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Programs: 10, Seed: 1})
	b := Generate(GenConfig{Programs: 10, Seed: 1})
	if len(a) != len(b) {
		t.Fatal("nondeterministic corpus size")
	}
	for i := range a {
		if a[i].Format() != b[i].Format() {
			t.Fatalf("program %d differs", i)
		}
	}
}

// TestFuzzerEvaluationPipeline is the §6 end-to-end: generate a corpus,
// execute it, and measure the fuzzer's input/output coverage with IOCov.
func TestFuzzerEvaluationPipeline(t *testing.T) {
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: an})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	if e := p.Mkdir("/fuzz", 0o777); e != sys.OK {
		t.Fatal(e)
	}
	corpus := Generate(GenConfig{Programs: 300, Seed: 7})
	res := Execute(p, corpus)
	if res.Executed < 1000 {
		t.Fatalf("executed only %d calls", res.Executed)
	}
	// The fuzzer's skewed constants cover many numeric boundaries...
	wc := an.InputReport("write", "count")
	if wc.Covered() < 8 {
		t.Errorf("fuzzer covered only %d write-size buckets", wc.Covered())
	}
	if an.Input("write", "count").Count("=0") == 0 {
		t.Error("fuzzer should hit the zero-size write boundary")
	}
	// ...and plenty of error outputs (fuzzers live on failure paths).
	if an.Output("open").ErrorCount() == 0 {
		t.Error("fuzzer triggered no open errors")
	}
	// Static conversion of the same corpus yields input coverage without
	// any output coverage beyond the placeholder.
	events, _ := Convert(corpus)
	stat := coverage.NewAnalyzer(coverage.DefaultOptions())
	stat.AddAll(events)
	if stat.Analyzed() == 0 {
		t.Fatal("static conversion produced nothing")
	}
	if got := stat.Output("open").Counts; len(got) != 1 {
		// All returns are the unknown placeholder partition ("OK").
		t.Errorf("static output partitions = %v, want exactly one", got)
	}
}
