package trace

import (
	"bytes"
	"testing"

	"iocov/internal/raceflag"
	"iocov/internal/sys"
)

// TestKeepSteadyStateAllocs pins the filter hot path: classifying events —
// tracked and untracked descriptors, matching and non-matching paths, pids
// the filter has never seen — must not allocate. The per-pid fd maps may
// only be created when an open actually installs a descriptor.
func TestKeepSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	f, err := NewFilter(`^/mnt/test(/|$)`)
	if err != nil {
		t.Fatal(err)
	}

	// One successful in-mount open installs pid 1's descriptor table.
	open := Event{Seq: 1, PID: 1, Name: "open", Path: "/mnt/test/a", Ret: 3}
	open.AddStr("filename", "/mnt/test/a")
	if !f.Keep(open) {
		t.Fatal("in-mount open not kept")
	}

	write := Event{Seq: 2, PID: 1, Name: "write", Ret: 100}
	write.AddArg("fd", 3)
	write.AddArg("count", 100)

	foreign := Event{Seq: 3, PID: 7, Name: "write", Ret: 1}
	foreign.AddArg("fd", 9)

	mkdir := Event{Seq: 4, PID: 2, Name: "mkdir", Path: "/mnt/test/d"}
	mkdir.AddStr("pathname", "/mnt/test/d")

	miss := Event{Seq: 5, PID: 3, Name: "stat", Path: "/var/log/x"}
	miss.AddStr("filename", "/var/log/x")

	failedOpen := Event{Seq: 6, PID: 8, Name: "open", Path: "/mnt/test/gone",
		Ret: -int64(sys.ENOENT), Err: sys.ENOENT}
	failedOpen.AddStr("filename", "/mnt/test/gone")

	n := testing.AllocsPerRun(200, func() {
		f.Keep(write)
		f.Keep(foreign)
		f.Keep(mkdir)
		f.Keep(miss)
		f.Keep(failedOpen)
	})
	if n != 0 {
		t.Fatalf("steady-state Keep allocates %.1f times per 5 events, want 0", n)
	}
}

// allocTestStream encodes n copies of a typical syscall event cycle whose
// strings all repeat, so everything past the first few events is a pure
// dictionary-hit decode.
func allocTestStream(t *testing.T, n, version int) []byte {
	t.Helper()
	var events []Event
	for i := 0; i < n; i++ {
		ev := Event{Seq: uint64(i + 1), PID: 1 + i%3, Name: "write", Ret: 4096}
		ev.AddStr("filename", "/mnt/test/a")
		ev.AddArg("fd", 3)
		ev.AddArg("count", 4096)
		events = append(events, ev)
	}
	return encodeEvents(t, events, version)
}

// TestBinaryParserSteadyStateAllocs pins the reference decoder's allocation
// regression fix: Next used to build a fresh Args and Strs map per event;
// with the inline-storage decode the steady state (all strings already
// interned) must not allocate at all.
func TestBinaryParserSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	for _, version := range []int{1, 2} {
		p := NewBinaryParser(bytes.NewReader(allocTestStream(t, 1000, version)))
		// Warm up: first sight interns the dictionary strings.
		for i := 0; i < 8; i++ {
			if _, err := p.Next(); err != nil {
				t.Fatal(err)
			}
		}
		n := testing.AllocsPerRun(500, func() {
			if _, err := p.Next(); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Fatalf("v%d steady-state BinaryParser.Next allocates %.1f per event, want 0", version, n)
		}
	}
}

// TestBatchDecodeSteadyStateAllocs pins the ingest fast path: decoding into
// a reused Event through the batch decoder must be allocation-free once the
// per-stream dictionary is warm.
func TestBatchDecodeSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	for _, version := range []int{1, 2} {
		d := NewBatchDecoder(bytes.NewReader(allocTestStream(t, 1000, version)))
		var ev Event
		for i := 0; i < 8; i++ {
			if _, err := d.Next(&ev); err != nil {
				t.Fatal(err)
			}
		}
		n := testing.AllocsPerRun(500, func() {
			if _, err := d.Next(&ev); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Fatalf("v%d steady-state BatchDecoder.Next allocates %.1f per event, want 0", version, n)
		}
	}
}
