package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"iocov/internal/sys"
)

// BatchDecoder is the ingest fast path: a frame-oriented binary decoder
// that walks raw stream bytes in a reused block buffer and decodes each
// record into a caller-owned Event, so the per-event steady state performs
// no allocation at all — no Event construction, no argument maps, no
// buffered-reader byte calls. It accepts both format versions (v1 absolute
// and v2 delta-encoded sequence numbers) and enforces exactly the same
// adversarial-input budgets as BinaryParser, which remains the reference
// decoder the fuzz harness checks this one against.
//
// Allocation discipline (statically proven via //iocov:hotpath, pinned by
// TestBatchDecodeSteadyStateAllocs):
//
//   - varints decode straight out of the block buffer; the refill path
//     that straddles a buffer boundary is an acknowledged cold path;
//   - strings resolve through the per-stream dictionary, so after first
//     sight every name, key, and path is an interned string — literal
//     string materialization (first sight, or spill past the dictionary
//     cap) is the cold path;
//   - events decode through Event's inline argument storage, spilling to
//     maps only past the inline capacity (the same contract the kernel's
//     hot-path producers follow).
//
// Next additionally reports the syscall name's dictionary ordinal, which is
// stable for the life of the stream: consumers key per-name dispatch state
// on it (coverage.Batch) and skip per-event string hashing entirely.
type BatchDecoder struct {
	r   io.Reader
	buf []byte
	pos int // next unread byte in buf
	end int // one past the last valid byte in buf
	// rerr is the underlying reader's terminal result (io.EOF or a
	// transport error), held until the buffered bytes are consumed.
	rerr       error
	emptyReads int

	version int
	header  bool
	dict    []string
	prevSeq uint64
	// evBytes tracks the literal string bytes the current event has
	// introduced, enforcing maxEventBytes.
	evBytes int
}

// batchBufSize is the decode block size. It matches the writers' buffer so
// a well-formed stream refills about once per flush.
const batchBufSize = 1 << 16

// NewBatchDecoder creates a batch decoder over r. The header is validated
// by the first Next call, or eagerly via ReadHeader.
func NewBatchDecoder(r io.Reader) *BatchDecoder {
	return &BatchDecoder{r: r, buf: make([]byte, batchBufSize)}
}

// Reset rebinds the decoder to a new stream, discarding all per-stream
// state (dictionary contents, sequence base, buffered bytes, parked
// errors) while keeping the block buffer and the dictionary's backing
// array. A Reset decoder is indistinguishable from a fresh one — the
// ingest daemon's session pool depends on that to recycle decoders across
// sessions, including after a stream was rejected mid-decode. Pass nil to
// park the decoder without retaining the previous reader.
func (d *BatchDecoder) Reset(r io.Reader) {
	d.r = r
	d.pos, d.end = 0, 0
	d.rerr = nil
	d.emptyReads = 0
	d.version = 0
	d.header = false
	clear(d.dict) // drop the string references so the old stream's names can be collected
	d.dict = d.dict[:0]
	d.prevSeq = 0
	d.evBytes = 0
}

// Version returns the stream's format version: 0 before the header has
// been read, then 1 or 2.
func (d *BatchDecoder) Version() int { return d.version }

// ReadHeader validates the stream header eagerly (idempotent). The ingest
// daemon calls it before the decode loop so a missing or mismatched header
// is rejected prior to any event work.
//
//iocov:coldpath
func (d *BatchDecoder) ReadHeader() error {
	if d.header {
		return nil
	}
	for d.end-d.pos < len(binaryMagic) {
		if !d.fill() {
			if d.end == d.pos {
				if d.rerr != nil && d.rerr != io.EOF {
					return d.rerr
				}
				return fmt.Errorf("trace: missing binary header: %w", ErrMalformed)
			}
			return fmt.Errorf("trace: short binary header: %w", d.eofErr())
		}
	}
	version, err := binaryVersion(d.buf[d.pos : d.pos+len(binaryMagic)])
	if err != nil {
		return err
	}
	d.pos += len(binaryMagic)
	d.version = version
	d.header = true
	return nil
}

// fill compacts the unread tail to the front of the buffer and reads more
// bytes from the underlying reader, reporting whether it made progress
// (read at least one new byte). The reader's terminal error is parked in
// rerr, not returned: buffered bytes are always drained first.
//
//iocov:coldpath
func (d *BatchDecoder) fill() bool {
	if d.pos > 0 {
		d.end = copy(d.buf, d.buf[d.pos:d.end])
		d.pos = 0
	}
	for d.rerr == nil && d.end < len(d.buf) {
		n, err := d.r.Read(d.buf[d.end:])
		d.end += n
		if err != nil {
			d.rerr = err
		}
		if n > 0 {
			return true
		}
		if err == nil {
			// A (0, nil) read violates the io.Reader guidance; bound the
			// retries the way bufio does rather than spinning forever.
			if d.emptyReads++; d.emptyReads >= 100 {
				d.rerr = io.ErrNoProgress
			}
		}
	}
	return false
}

// eofErr classifies an exhausted stream mid-value: a transport error passes
// through, a bare EOF becomes ErrUnexpectedEOF (bytes of the current value
// were already consumed).
//
//iocov:coldpath
func (d *BatchDecoder) eofErr() error {
	if d.rerr != nil && d.rerr != io.EOF {
		return d.rerr
	}
	return io.ErrUnexpectedEOF
}

// uvarint decodes one unsigned varint. The fast path requires a maximal
// varint's worth of buffered bytes, so a single branch guards the direct
// buffer walk.
//
//iocov:hotpath
func (d *BatchDecoder) uvarint() (uint64, error) {
	if d.end-d.pos >= binary.MaxVarintLen64 {
		v, n := binary.Uvarint(d.buf[d.pos:d.end])
		if n <= 0 {
			return 0, d.overflowErr()
		}
		d.pos += n
		return v, nil
	}
	return d.uvarintSlow()
}

// uvarintSlow handles the buffer-boundary and end-of-stream cases: refill
// until the varint completes, hitting EOF classification when it cannot.
//
//iocov:coldpath
func (d *BatchDecoder) uvarintSlow() (uint64, error) {
	for {
		v, n := binary.Uvarint(d.buf[d.pos:d.end])
		if n > 0 {
			d.pos += n
			return v, nil
		}
		if n < 0 {
			return 0, d.overflowErr()
		}
		if !d.fill() {
			if d.pos == d.end {
				if d.rerr != nil && d.rerr != io.EOF {
					return 0, d.rerr
				}
				return 0, io.EOF
			}
			return 0, d.eofErr()
		}
	}
}

// overflowErr types an overlong varint as malformed input.
//
//iocov:coldpath
func (d *BatchDecoder) overflowErr() error {
	return fmt.Errorf("trace: varint overflows 64 bits: %w", ErrMalformed)
}

// varint decodes one zigzag varint.
//
//iocov:hotpath
func (d *BatchDecoder) varint() (int64, error) {
	ux, err := d.uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, err
}

// str decodes one dictionary-compressed string, returning the string and
// its dictionary ordinal (-1 when the string is a literal past the
// dictionary cap). The dictionary-hit path — every string after first
// sight — allocates nothing.
//
//iocov:hotpath
func (d *BatchDecoder) str() (string, int, error) {
	id, err := d.uvarint()
	if err != nil {
		return "", -1, err
	}
	if id != 0 {
		// Validate in the uint64 domain: a 64-bit id converted to int
		// first could wrap negative and index out of bounds.
		if id > uint64(len(d.dict)) {
			return "", -1, d.danglingRefErr(id)
		}
		return d.dict[id-1], int(id - 1), nil
	}
	return d.strLiteral()
}

//iocov:coldpath
func (d *BatchDecoder) danglingRefErr(id uint64) error {
	return fmt.Errorf("trace: dangling dictionary reference %d: %w", id, ErrMalformed)
}

// strLiteral materializes a newly introduced string and interns it in the
// dictionary (until the cap). Cold by construction: a conforming writer
// emits each distinct string literally exactly once per stream.
//
//iocov:coldpath
func (d *BatchDecoder) strLiteral() (string, int, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", -1, err
	}
	if n > maxStringLen {
		return "", -1, fmt.Errorf("trace: unreasonable string length %d: %w", n, ErrMalformed)
	}
	if d.evBytes += int(n); d.evBytes > maxEventBytes {
		return "", -1, fmt.Errorf("trace: event exceeds %d-byte string budget: %w", maxEventBytes, ErrMalformed)
	}
	need := int(n)
	for d.end-d.pos < need {
		if need > len(d.buf) {
			// A string longer than the block: grow the buffer once to hold
			// it contiguously (bounded by maxStringLen).
			grown := make([]byte, need)
			d.end = copy(grown, d.buf[d.pos:d.end])
			d.pos = 0
			d.buf = grown
		}
		if !d.fill() {
			return "", -1, fmt.Errorf("trace: truncated string: %w", d.eofErr())
		}
	}
	s := string(d.buf[d.pos : d.pos+need])
	d.pos += need
	if len(d.dict) < maxDictEntries {
		d.dict = append(d.dict, s)
		return s, len(d.dict) - 1, nil
	}
	return s, -1, nil
}

// Next decodes the next record into *ev (which is reset first) and returns
// the syscall name's per-stream dictionary ordinal (-1 when the name was a
// literal past the dictionary cap). io.EOF marks a clean end of stream; any
// structural failure is ErrMalformed, any truncation io.ErrUnexpectedEOF,
// and transport errors pass through untouched.
//
//iocov:hotpath
func (d *BatchDecoder) Next(ev *Event) (nameID int, err error) {
	if !d.header {
		if err := d.ReadHeader(); err != nil {
			return -1, err
		}
	}
	*ev = Event{}
	d.evBytes = 0
	var seq uint64
	if d.version >= 2 {
		var delta int64
		delta, err = d.varint()
		seq = d.prevSeq + uint64(delta)
	} else {
		seq, err = d.uvarint()
	}
	if err != nil {
		// io.EOF at the seq position is the clean end of the stream.
		return -1, err
	}
	d.prevSeq = seq
	ev.Seq = seq
	pid, err := d.uvarint()
	if err != nil {
		return -1, unexpectedEOF(err)
	}
	if pid > maxIntValue {
		return -1, d.pidOverflowErr(pid)
	}
	ev.PID = int(pid)
	ev.Name, nameID, err = d.str()
	if err != nil {
		return -1, unexpectedEOF(err)
	}
	nStrs, err := d.uvarint()
	if err != nil {
		return -1, unexpectedEOF(err)
	}
	if nStrs > maxPairs {
		return -1, d.pairCountErr("string-arg", nStrs)
	}
	for i := uint64(0); i < nStrs; i++ {
		k, _, err := d.str()
		if err != nil {
			return -1, unexpectedEOF(err)
		}
		v, _, err := d.str()
		if err != nil {
			return -1, unexpectedEOF(err)
		}
		ev.AddStr(k, v)
	}
	nArgs, err := d.uvarint()
	if err != nil {
		return -1, unexpectedEOF(err)
	}
	if nArgs > maxPairs {
		return -1, d.pairCountErr("arg", nArgs)
	}
	for i := uint64(0); i < nArgs; i++ {
		k, _, err := d.str()
		if err != nil {
			return -1, unexpectedEOF(err)
		}
		v, err := d.varint()
		if err != nil {
			return -1, unexpectedEOF(err)
		}
		ev.AddArg(k, v)
	}
	if ev.Ret, err = d.varint(); err != nil {
		return -1, unexpectedEOF(err)
	}
	errno, err := d.uvarint()
	if err != nil {
		return -1, unexpectedEOF(err)
	}
	if errno > maxIntValue {
		return -1, d.errnoOverflowErr(errno)
	}
	ev.Err = sys.Errno(errno)
	ev.Path = ev.primaryPathArg()
	return nameID, nil
}

//iocov:coldpath
func (d *BatchDecoder) pidOverflowErr(pid uint64) error {
	return fmt.Errorf("trace: pid %d overflows int: %w", pid, ErrMalformed)
}

//iocov:coldpath
func (d *BatchDecoder) errnoOverflowErr(errno uint64) error {
	return fmt.Errorf("trace: errno %d overflows int: %w", errno, ErrMalformed)
}

//iocov:coldpath
func (d *BatchDecoder) pairCountErr(kind string, n uint64) error {
	return fmt.Errorf("trace: unreasonable %s count %d: %w", kind, n, ErrMalformed)
}
