package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"iocov/internal/sys"
)

// batchTestEvents builds a decode-hostile event mix: inline-capacity events,
// spill events (more args/strs than the inline slots hold), dictionary-heavy
// repetition, fresh literals on every event, empty names, and the full
// scalar ranges.
func batchTestEvents(n int) []Event {
	rng := rand.New(rand.NewSource(7))
	names := []string{"open", "read", "write", "close", "fsync", "setxattr"}
	var evs []Event
	for i := 0; i < n; i++ {
		ev := Event{
			Seq:  uint64(i * 3),
			PID:  rng.Intn(1 << 16),
			Name: names[rng.Intn(len(names))],
			Ret:  rng.Int63() - rng.Int63(),
		}
		switch i % 5 {
		case 0: // inline-only, path-carrying
			ev.AddStr("filename", "/mnt/test/a")
			ev.AddArg("flags", int64(rng.Intn(1<<20)))
			ev.AddArg("mode", 0o644)
		case 1: // spills both inline stores
			ev.Strs = map[string]string{
				"filename": "/mnt/test/b", "name": "user.k", "path": "/mnt/test/c",
			}
			ev.Args = map[string]int64{
				"fd": 3, "count": 4096, "offset": 1 << 30, "whence": 1, "size": 9,
			}
		case 2: // a fresh literal per event: dictionary keeps growing
			ev.AddStr("pathname", "/mnt/test/"+names[i%len(names)]+string(rune('a'+i%26)))
		case 3: // bare numeric event
			ev.AddArg("fd", int64(rng.Intn(64)))
			ev.Err = sys.ENOENT
			ev.Ret = -int64(sys.ENOENT)
		case 4: // empty name, no args at all
			ev.Name = ""
		}
		evs = append(evs, ev)
	}
	return evs
}

func encodeEvents(t *testing.T, evs []Event, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	var w *BinaryWriter
	if version >= 2 {
		w = NewBinaryWriterV2(&buf)
	} else {
		w = NewBinaryWriter(&buf)
	}
	for _, ev := range evs {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeBatch drains a BatchDecoder, returning the events and the name
// ordinal reported with each one.
func decodeBatch(t *testing.T, d *BatchDecoder) ([]Event, []int) {
	t.Helper()
	var evs []Event
	var ids []int
	var ev Event
	for {
		id, err := d.Next(&ev)
		if err == io.EOF {
			return evs, ids
		}
		if err != nil {
			t.Fatalf("batch decode event %d: %v", len(evs), err)
		}
		evs = append(evs, ev)
		ids = append(ids, id)
	}
}

// TestBatchDecoderDifferential is the codec acceptance test: over both
// format versions, the batch decoder must reconstruct exactly the events the
// reference BinaryParser does — including spill events and literal strings —
// and must report a stable dictionary ordinal per distinct name.
func TestBatchDecoderDifferential(t *testing.T) {
	src := batchTestEvents(500)
	for _, version := range []int{1, 2} {
		data := encodeEvents(t, src, version)
		want, err := ParseAllBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("v%d reference parse: %v", version, err)
		}
		d := NewBatchDecoder(bytes.NewReader(data))
		got, ids := decodeBatch(t, d)
		if d.Version() != version {
			t.Errorf("v%d: Version() = %d", version, d.Version())
		}
		if len(got) != len(want) {
			t.Fatalf("v%d: batch decoded %d events, reference %d", version, len(got), len(want))
		}
		idByName := make(map[string]int)
		for i := range want {
			if !eventsEquivalent(&got[i], &want[i]) {
				t.Fatalf("v%d event %d:\n batch %+v\n  ref  %+v", version, i, got[i], want[i])
			}
			if prev, seen := idByName[got[i].Name]; seen {
				if ids[i] != prev {
					t.Fatalf("v%d event %d: name %q ordinal %d, previously %d",
						version, i, got[i].Name, ids[i], prev)
				}
			} else {
				if ids[i] < 0 {
					t.Fatalf("v%d event %d: interned name %q reported ordinal %d",
						version, i, got[i].Name, ids[i])
				}
				idByName[got[i].Name] = ids[i]
			}
		}
	}
}

// TestBatchDecoderSmallBuffer forces values to straddle every possible
// buffer boundary by shrinking the block to a few bytes, proving the
// refill/compaction path preserves the decode exactly.
func TestBatchDecoderSmallBuffer(t *testing.T) {
	src := batchTestEvents(64)
	for _, version := range []int{1, 2} {
		data := encodeEvents(t, src, version)
		want, err := ParseAllBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{16, 31, 64} {
			d := &BatchDecoder{r: iotest(data), buf: make([]byte, size)}
			got, _ := decodeBatch(t, d)
			if len(got) != len(want) {
				t.Fatalf("v%d buf=%d: %d events, want %d", version, size, len(got), len(want))
			}
			for i := range want {
				if !eventsEquivalent(&got[i], &want[i]) {
					t.Fatalf("v%d buf=%d event %d mismatch", version, size, i)
				}
			}
		}
	}
}

// iotest wraps a byte slice in a reader that returns at most 7 bytes per
// call, stressing partial reads on top of the small buffer.
func iotest(data []byte) io.Reader { return &dribbleReader{data: data} }

type dribbleReader struct{ data []byte }

func (r *dribbleReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := len(p)
	if n > 7 {
		n = 7
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// TestBatchDecoderEmptyAndHeader pins the header rules: zero bytes is
// malformed, a short header is a truncation, a header-only stream is a
// valid empty trace, and ReadHeader is idempotent.
func TestBatchDecoderEmptyAndHeader(t *testing.T) {
	d := NewBatchDecoder(bytes.NewReader(nil))
	if err := d.ReadHeader(); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty stream ReadHeader: %v, want ErrMalformed", err)
	}

	d = NewBatchDecoder(bytes.NewReader([]byte(binaryMagic[:2])))
	var ev Event
	if _, err := d.Next(&ev); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short header: %v, want ErrUnexpectedEOF", err)
	}

	d = NewBatchDecoder(bytes.NewReader([]byte(binaryMagicV2)))
	if err := d.ReadHeader(); err != nil {
		t.Fatalf("header-only ReadHeader: %v", err)
	}
	if err := d.ReadHeader(); err != nil {
		t.Fatalf("second ReadHeader: %v", err)
	}
	if d.Version() != 2 {
		t.Errorf("Version() = %d, want 2", d.Version())
	}
	if _, err := d.Next(&ev); err != io.EOF {
		t.Errorf("header-only Next: %v, want EOF", err)
	}

	d = NewBatchDecoder(bytes.NewReader([]byte(binaryMagicPrefix + "\x09")))
	if err := d.ReadHeader(); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown version: %v, want ErrMalformed", err)
	}
}

// TestBatchDecoderTruncation: every proper prefix of a valid stream must
// end in an error, never a silent success.
func TestBatchDecoderTruncation(t *testing.T) {
	full := encodeEvents(t, batchTestEvents(5), 2)
	for cut := len(binaryMagic) + 1; cut < len(full)-1; cut++ {
		d := NewBatchDecoder(bytes.NewReader(full[:cut]))
		var ev Event
		var err error
		for err == nil {
			_, err = d.Next(&ev)
		}
		if err == io.EOF {
			// A clean EOF is only legitimate exactly at an event boundary;
			// cross-check against the reference decoder.
			if _, refErr := ParseAllBinary(bytes.NewReader(full[:cut])); refErr != nil {
				t.Errorf("cut %d: batch decoder clean EOF, reference errors with %v", cut, refErr)
			}
			continue
		}
		if !errors.Is(err, ErrMalformed) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut %d: untyped error %v", cut, err)
		}
	}
}

// TestBatchDecoderTransportError: an underlying transport failure surfaces
// verbatim, never reclassified as a decode error.
func TestBatchDecoderTransportError(t *testing.T) {
	full := encodeEvents(t, batchTestEvents(50), 2)
	boom := errors.New("connection reset")
	d := NewBatchDecoder(io.MultiReader(
		bytes.NewReader(full[:len(full)/2]),
		&failAfter{err: boom},
	))
	var ev Event
	var err error
	for err == nil {
		_, err = d.Next(&ev)
	}
	if !errors.Is(err, boom) {
		t.Errorf("transport error surfaced as %v, want %v", err, boom)
	}
}

type failAfter struct{ err error }

func (f *failAfter) Read([]byte) (int, error) { return 0, f.err }
