package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"iocov/internal/sys"
)

// The binary trace format is the compact counterpart of the text format,
// playing the role of LTTng's CTF stream (the text format corresponds to
// babeltrace's pretty-printed view). Layout:
//
//	magic "IOCV" + version byte 1
//	per event:
//	  uvarint seq
//	  uvarint pid
//	  string  name          (dictionary-compressed, see below)
//	  uvarint nStrs, then nStrs x (string key, string value)
//	  uvarint nArgs, then nArgs x (string key, zigzag varint value)
//	  zigzag  ret
//	  uvarint errno
//
// Strings are dictionary-compressed per stream: uvarint id, where id 0
// introduces a new entry (followed by uvarint length + bytes) and id N
// references the (N-1)th previously introduced string. Syscall names and
// argument keys repeat constantly, so traces shrink by roughly 4x vs text.
// The event's Path is reconstructed from the standard path keys, exactly
// like the text parser does.

const binaryMagic = "IOCV\x01"

// BinaryWriter serializes events to the binary format. It implements Sink.
type BinaryWriter struct {
	bw   *bufio.Writer
	dict map[string]uint64
	err  error
	tmp  []byte
}

// NewBinaryWriter creates a writer and emits the stream header.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	out := &BinaryWriter{bw: bw, dict: make(map[string]uint64), tmp: make([]byte, binary.MaxVarintLen64)}
	_, out.err = bw.WriteString(binaryMagic)
	return out
}

func (w *BinaryWriter) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.tmp, v)
	_, w.err = w.bw.Write(w.tmp[:n])
}

func (w *BinaryWriter) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.tmp, v)
	_, w.err = w.bw.Write(w.tmp[:n])
}

func (w *BinaryWriter) str(s string) {
	if w.err != nil {
		return
	}
	if id, ok := w.dict[s]; ok {
		w.uvarint(id)
		return
	}
	w.uvarint(0)
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
	w.dict[s] = uint64(len(w.dict)) + 1
}

// Emit writes one event. Errors are sticky and reported by Flush.
func (w *BinaryWriter) Emit(ev Event) {
	w.uvarint(ev.Seq)
	w.uvarint(uint64(ev.PID))
	w.str(ev.Name)
	w.uvarint(uint64(ev.numStrs()))
	for _, k := range ev.strNames() {
		w.str(k)
		v, _ := ev.Str(k)
		w.str(v)
	}
	w.uvarint(uint64(ev.numArgs()))
	for _, k := range ev.argNames() {
		w.str(k)
		v, _ := ev.Arg(k)
		w.varint(v)
	}
	w.varint(ev.Ret)
	w.uvarint(uint64(ev.Err))
}

// Flush flushes buffered output and returns the first error.
func (w *BinaryWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// BinaryParser reads events back from the binary format.
type BinaryParser struct {
	br   *bufio.Reader
	dict []string
	read bool
}

// NewBinaryParser creates a parser over r; the header is validated on the
// first Next call.
func NewBinaryParser(r io.Reader) *BinaryParser {
	return &BinaryParser{br: bufio.NewReaderSize(r, 1<<16)}
}

func (p *BinaryParser) header() error {
	buf := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(p.br, buf); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: short binary header: %w", err)
	}
	if string(buf) != binaryMagic {
		return fmt.Errorf("trace: bad binary magic %q", buf)
	}
	p.read = true
	return nil
}

func (p *BinaryParser) str() (string, error) {
	id, err := binary.ReadUvarint(p.br)
	if err != nil {
		return "", err
	}
	if id != 0 {
		idx := int(id) - 1
		if idx >= len(p.dict) {
			return "", fmt.Errorf("trace: dangling dictionary reference %d", id)
		}
		return p.dict[idx], nil
	}
	n, err := binary.ReadUvarint(p.br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(p.br, buf); err != nil {
		return "", fmt.Errorf("trace: truncated string: %w", err)
	}
	s := string(buf)
	p.dict = append(p.dict, s)
	return s, nil
}

// Next returns the next event or io.EOF at a clean end of stream.
func (p *BinaryParser) Next() (Event, error) {
	if !p.read {
		if err := p.header(); err != nil {
			return Event{}, err
		}
	}
	var ev Event
	seq, err := binary.ReadUvarint(p.br)
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, err
	}
	ev.Seq = seq
	pid, err := binary.ReadUvarint(p.br)
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	ev.PID = int(pid)
	if ev.Name, err = p.str(); err != nil {
		return Event{}, unexpectedEOF(err)
	}
	nStrs, err := binary.ReadUvarint(p.br)
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	if nStrs > 64 {
		return Event{}, fmt.Errorf("trace: unreasonable string-arg count %d", nStrs)
	}
	if nStrs > 0 {
		ev.Strs = make(map[string]string, nStrs)
		for i := uint64(0); i < nStrs; i++ {
			k, err := p.str()
			if err != nil {
				return Event{}, unexpectedEOF(err)
			}
			v, err := p.str()
			if err != nil {
				return Event{}, unexpectedEOF(err)
			}
			ev.Strs[k] = v
		}
	}
	nArgs, err := binary.ReadUvarint(p.br)
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	if nArgs > 64 {
		return Event{}, fmt.Errorf("trace: unreasonable arg count %d", nArgs)
	}
	if nArgs > 0 {
		ev.Args = make(map[string]int64, nArgs)
		for i := uint64(0); i < nArgs; i++ {
			k, err := p.str()
			if err != nil {
				return Event{}, unexpectedEOF(err)
			}
			v, err := binary.ReadVarint(p.br)
			if err != nil {
				return Event{}, unexpectedEOF(err)
			}
			ev.Args[k] = v
		}
	}
	if ev.Ret, err = binary.ReadVarint(p.br); err != nil {
		return Event{}, unexpectedEOF(err)
	}
	errno, err := binary.ReadUvarint(p.br)
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	ev.Err = sys.Errno(errno)
	ev.Path = primaryPath(ev.Strs)
	return ev, nil
}

// ParseAllBinary reads every event from a binary stream.
func ParseAllBinary(r io.Reader) ([]Event, error) {
	p := NewBinaryParser(r)
	var out []Event
	for {
		ev, err := p.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// unexpectedEOF converts a mid-event EOF into a hard error so truncated
// traces are reported rather than silently accepted.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
