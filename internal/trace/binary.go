package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"iocov/internal/sys"
)

// The binary trace format is the compact counterpart of the text format,
// playing the role of LTTng's CTF stream (the text format corresponds to
// babeltrace's pretty-printed view). Layout:
//
//	magic "IOCV" + version byte (1 or 2)
//	per event:
//	  uvarint seq           (v1)  /  zigzag varint seq delta (v2)
//	  uvarint pid
//	  string  name          (dictionary-compressed, see below)
//	  uvarint nStrs, then nStrs x (string key, string value)
//	  uvarint nArgs, then nArgs x (string key, zigzag varint value)
//	  zigzag  ret
//	  uvarint errno
//
// Strings are dictionary-compressed per stream: uvarint id, where id 0
// introduces a new entry (followed by uvarint length + bytes) and id N
// references the (N-1)th previously introduced string. Syscall names and
// argument keys repeat constantly, so traces shrink by roughly 4x vs text.
// The event's Path is reconstructed from the standard path keys, exactly
// like the text parser does.
//
// Format v2 differs from v1 in exactly one field: the per-event sequence
// number is delta-encoded as a zigzag varint against the previous event's
// seq (starting from 0). Kernel emitters assign monotonically increasing
// sequence numbers, so the delta is almost always +1 and encodes in one
// byte forever, where the absolute v1 encoding grows with the stream. The
// delta is computed in the uint64 domain, so every (prev, seq) pair —
// including regressions — round-trips exactly. Readers in this package
// (BinaryParser and BatchDecoder) accept both versions transparently; v1
// is supported forever.

const (
	binaryMagicPrefix = "IOCV"
	binaryMagic       = binaryMagicPrefix + "\x01"
	binaryMagicV2     = binaryMagicPrefix + "\x02"
)

// ErrMalformed marks structural decode failures: bad magic, dangling or
// out-of-range dictionary references, and declared sizes over the hard caps
// below. The ingest daemon exposes BinaryParser to untrusted bytes, so every
// limit violation must surface as a typed error (never a panic or an
// unbounded allocation); callers distinguish a malformed stream
// (errors.Is(err, ErrMalformed)) from a merely truncated one
// (errors.Is(err, io.ErrUnexpectedEOF)).
var ErrMalformed = errors.New("malformed binary trace")

const (
	// maxStringLen caps one dictionary string's declared length. The
	// parser allocates at most this much for a single string no matter
	// what length the stream declares.
	maxStringLen = 1 << 20
	// maxDictEntries caps the per-stream dictionary on BOTH sides: the
	// writer stops interning new strings at the cap (they are still
	// emitted literally) and the parser stops retaining them, so ids stay
	// aligned for arbitrarily long streams while parser memory stays
	// bounded by the cap rather than by the stream length.
	maxDictEntries = 1 << 20
	// maxEventBytes caps the literal string bytes one event may introduce,
	// bounding per-event allocation independently of the 64-pair count
	// caps (64 string pairs of maxStringLen each would otherwise be
	// 128 MiB for a single event).
	maxEventBytes = 1 << 22
	// maxPairs caps the per-event argument-pair counts; no real syscall
	// has more than a handful.
	maxPairs = 64
)

// BinaryWriter serializes events to the binary format. It implements Sink.
type BinaryWriter struct {
	bw      *bufio.Writer
	dict    map[string]uint64
	err     error
	tmp     []byte
	version int
	prevSeq uint64
}

// NewBinaryWriter creates a format-v1 writer and emits the stream header.
func NewBinaryWriter(w io.Writer) *BinaryWriter { return newBinaryWriter(w, binaryMagic, 1) }

// NewBinaryWriterV2 creates a format-v2 writer (delta-encoded sequence
// numbers) and emits the stream header. V2 is what the remote harness
// streams by default; v1 remains fully supported on the read side.
func NewBinaryWriterV2(w io.Writer) *BinaryWriter { return newBinaryWriter(w, binaryMagicV2, 2) }

func newBinaryWriter(w io.Writer, magic string, version int) *BinaryWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	out := &BinaryWriter{bw: bw, dict: make(map[string]uint64),
		tmp: make([]byte, binary.MaxVarintLen64), version: version}
	_, out.err = bw.WriteString(magic)
	return out
}

func (w *BinaryWriter) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.tmp, v)
	_, w.err = w.bw.Write(w.tmp[:n])
}

func (w *BinaryWriter) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.tmp, v)
	_, w.err = w.bw.Write(w.tmp[:n])
}

func (w *BinaryWriter) str(s string) {
	if w.err != nil {
		return
	}
	if id, ok := w.dict[s]; ok {
		w.uvarint(id)
		return
	}
	w.uvarint(0)
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
	if len(w.dict) < maxDictEntries {
		w.dict[s] = uint64(len(w.dict)) + 1
	}
}

// Emit writes one event. Errors are sticky and reported by Flush.
func (w *BinaryWriter) Emit(ev Event) {
	if w.version >= 2 {
		// uint64 subtraction wraps, and the reader adds it back in the
		// same domain, so any seq sequence round-trips exactly.
		w.varint(int64(ev.Seq - w.prevSeq))
		w.prevSeq = ev.Seq
	} else {
		w.uvarint(ev.Seq)
	}
	w.uvarint(uint64(ev.PID))
	w.str(ev.Name)
	w.uvarint(uint64(ev.numStrs()))
	for _, k := range ev.strNames() {
		w.str(k)
		v, _ := ev.Str(k)
		w.str(v)
	}
	w.uvarint(uint64(ev.numArgs()))
	for _, k := range ev.argNames() {
		w.str(k)
		v, _ := ev.Arg(k)
		w.varint(v)
	}
	w.varint(ev.Ret)
	w.uvarint(uint64(ev.Err))
}

// Flush flushes buffered output and returns the first error.
func (w *BinaryWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// BinaryParser reads events back from the binary format (either version).
// It is hardened against adversarial input (see ErrMalformed): string
// lengths, pair counts, dictionary size, and per-event byte budgets are all
// capped, and dictionary references are validated in the uint64 domain
// before any indexing. It is the reference decoder; BatchDecoder is its
// allocation-free twin for the ingest hot path, and the two are fuzzed
// against each other.
type BinaryParser struct {
	br      *bufio.Reader
	dict    []string
	read    bool
	version int
	prevSeq uint64
	// evBytes tracks the literal string bytes the current event has
	// introduced, enforcing maxEventBytes.
	evBytes int
}

// NewBinaryParser creates a parser over r; the header is validated on the
// first Next call.
func NewBinaryParser(r io.Reader) *BinaryParser {
	return &BinaryParser{br: bufio.NewReaderSize(r, 1<<16)}
}

func (p *BinaryParser) header() error {
	buf := make([]byte, len(binaryMagic))
	n, err := io.ReadFull(p.br, buf)
	if err != nil {
		if n == 0 {
			// A zero-byte stream is not an empty trace: the header is
			// mandatory, so its absence is a malformed stream, not EOF.
			// (Before this was typed, POST /ingest with an empty body
			// passed as a valid session.)
			return fmt.Errorf("trace: missing binary header: %w", ErrMalformed)
		}
		return fmt.Errorf("trace: short binary header: %w", unexpectedEOF(err))
	}
	version, err := binaryVersion(buf)
	if err != nil {
		return err
	}
	p.version = version
	p.read = true
	return nil
}

// binaryVersion validates a 5-byte header and returns the format version.
func binaryVersion(buf []byte) (int, error) {
	if len(buf) != len(binaryMagic) || string(buf[:len(binaryMagicPrefix)]) != binaryMagicPrefix {
		return 0, fmt.Errorf("trace: bad binary magic %q: %w", buf, ErrMalformed)
	}
	v := int(buf[len(binaryMagicPrefix)])
	if v < 1 || v > 2 {
		return 0, fmt.Errorf("trace: unsupported binary format version %d: %w", v, ErrMalformed)
	}
	return v, nil
}

// Version returns the stream's negotiated format version: 0 before the
// header has been read, then 1 or 2.
func (p *BinaryParser) Version() int { return p.version }

// errVarintOverflow captures encoding/binary's unexported overflow sentinel
// by probing it once, so the parser can classify overlong varints as
// malformed input by identity rather than by message matching.
var errVarintOverflow = func() error {
	overlong := bytes.Repeat([]byte{0x80}, binary.MaxVarintLen64)
	_, err := binary.ReadUvarint(bytes.NewReader(overlong))
	return err
}()

// varintErr types a varint decode failure: EOF and transport errors pass
// through untouched; the stdlib overflow sentinel becomes ErrMalformed.
func varintErr(err error) error {
	if err == errVarintOverflow {
		return fmt.Errorf("trace: varint overflows 64 bits: %w", ErrMalformed)
	}
	return err
}

// uvarint reads one unsigned varint with typed error classification.
func (p *BinaryParser) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(p.br)
	return v, varintErr(err)
}

// varint reads one zigzag varint with typed error classification.
func (p *BinaryParser) varint() (int64, error) {
	v, err := binary.ReadVarint(p.br)
	return v, varintErr(err)
}

func (p *BinaryParser) str() (string, error) {
	id, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if id != 0 {
		// Validate in the uint64 domain: a 64-bit id converted to int
		// first could wrap negative and index out of bounds.
		if id > uint64(len(p.dict)) {
			return "", fmt.Errorf("trace: dangling dictionary reference %d: %w", id, ErrMalformed)
		}
		return p.dict[id-1], nil
	}
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("trace: unreasonable string length %d: %w", n, ErrMalformed)
	}
	if p.evBytes += int(n); p.evBytes > maxEventBytes {
		return "", fmt.Errorf("trace: event exceeds %d-byte string budget: %w", maxEventBytes, ErrMalformed)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(p.br, buf); err != nil {
		return "", fmt.Errorf("trace: truncated string: %w", unexpectedEOF(err))
	}
	s := string(buf)
	if len(p.dict) < maxDictEntries {
		p.dict = append(p.dict, s)
	}
	return s, nil
}

// Next returns the next event or io.EOF at a clean end of stream.
func (p *BinaryParser) Next() (Event, error) {
	if !p.read {
		if err := p.header(); err != nil {
			return Event{}, err
		}
	}
	var ev Event
	p.evBytes = 0
	var seq uint64
	var err error
	if p.version >= 2 {
		var delta int64
		delta, err = p.varint()
		seq = p.prevSeq + uint64(delta)
	} else {
		seq, err = p.uvarint()
	}
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, err
	}
	p.prevSeq = seq
	ev.Seq = seq
	pid, err := p.uvarint()
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	// Validate in the uint64 domain: a pid >= 2^63 would wrap negative
	// through the int conversion and flow downstream as a nonsense process.
	if pid > maxIntValue {
		return Event{}, fmt.Errorf("trace: pid %d overflows int: %w", pid, ErrMalformed)
	}
	ev.PID = int(pid)
	if ev.Name, err = p.str(); err != nil {
		return Event{}, unexpectedEOF(err)
	}
	nStrs, err := p.uvarint()
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	if nStrs > maxPairs {
		return Event{}, fmt.Errorf("trace: unreasonable string-arg count %d: %w", nStrs, ErrMalformed)
	}
	// Arguments route through the event's inline storage (AddStr/AddArg),
	// exactly like hot-path producers: a typical syscall event decodes with
	// no per-event map allocation, spilling to the maps only past the
	// inline capacity.
	for i := uint64(0); i < nStrs; i++ {
		k, err := p.str()
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		v, err := p.str()
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		ev.AddStr(k, v)
	}
	nArgs, err := p.uvarint()
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	if nArgs > maxPairs {
		return Event{}, fmt.Errorf("trace: unreasonable arg count %d: %w", nArgs, ErrMalformed)
	}
	for i := uint64(0); i < nArgs; i++ {
		k, err := p.str()
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		v, err := p.varint()
		if err != nil {
			return Event{}, unexpectedEOF(err)
		}
		ev.AddArg(k, v)
	}
	if ev.Ret, err = p.varint(); err != nil {
		return Event{}, unexpectedEOF(err)
	}
	errno, err := p.uvarint()
	if err != nil {
		return Event{}, unexpectedEOF(err)
	}
	if errno > maxIntValue {
		return Event{}, fmt.Errorf("trace: errno %d overflows int: %w", errno, ErrMalformed)
	}
	ev.Err = sys.Errno(errno)
	ev.Path = ev.primaryPathArg()
	return ev, nil
}

// maxIntValue is the largest uvarint that converts to int without wrapping
// negative; pid and errno fields beyond it are structurally malformed.
const maxIntValue = 1<<63 - 1

// ParseAllBinary reads every event from a binary stream.
func ParseAllBinary(r io.Reader) ([]Event, error) {
	p := NewBinaryParser(r)
	var out []Event
	for {
		ev, err := p.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// unexpectedEOF converts a mid-event EOF into a hard error so truncated
// traces are reported rather than silently accepted.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
