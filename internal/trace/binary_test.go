package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"iocov/internal/sys"
)

// eventsEquivalent compares two events semantically: scalar fields plus the
// full argument sets through the accessor API, so map-built and
// inline-built events compare equal when they carry the same data. (The
// decoders use inline storage, so reflect.DeepEqual against a map-built
// original would spuriously fail on representation.)
func eventsEquivalent(a, b *Event) bool {
	if a.Seq != b.Seq || a.PID != b.PID || a.Name != b.Name ||
		a.Path != b.Path || a.Ret != b.Ret || a.Err != b.Err {
		return false
	}
	if a.numArgs() != b.numArgs() || a.numStrs() != b.numStrs() {
		return false
	}
	ok := true
	a.EachArg(func(name string, v int64) {
		if got, found := b.Arg(name); !found || got != v {
			ok = false
		}
	})
	a.EachStr(func(name, v string) {
		if got, found := b.Str(name); !found || got != v {
			ok = false
		}
	})
	return ok
}

func TestBinaryRoundTrip(t *testing.T) {
	events := []Event{
		sampleEvent(),
		{Seq: 43, PID: 7, Name: "write",
			Args: map[string]int64{"fd": 3, "count": 4096},
			Ret:  -int64(sys.ENOSPC), Err: sys.ENOSPC},
		{Seq: 44, PID: 8, Name: "sync"},
		{Seq: 45, PID: 7, Name: "setxattr", Path: "/mnt/test/x",
			Strs: map[string]string{"pathname": "/mnt/test/x", "name": "user.k"},
			Args: map[string]int64{"size": 0, "flags": 2}},
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAllBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d, want %d", len(got), len(events))
	}
	for i := range events {
		if !eventsEquivalent(&got[i], &events[i]) {
			t.Errorf("event %d:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestBinaryDictionaryCompression(t *testing.T) {
	// Many events with repeating names/keys/paths: the binary stream must
	// be much smaller than the text stream.
	rng := rand.New(rand.NewSource(1))
	var events []Event
	for i := 0; i < 2000; i++ {
		events = append(events, Event{
			Seq: uint64(i + 1), PID: 1, Name: "write",
			Args: map[string]int64{"fd": 3, "count": int64(rng.Intn(1 << 20))},
			Ret:  1,
		})
	}
	var bin, txt bytes.Buffer
	bw := NewBinaryWriter(&bin)
	tw := NewWriter(&txt)
	for _, ev := range events {
		bw.Emit(ev)
		tw.Emit(ev)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*3 > txt.Len() {
		t.Errorf("binary %d bytes vs text %d: expected at least 3x compression", bin.Len(), txt.Len())
	}
	got, err := ParseAllBinary(&bin)
	if err != nil || len(got) != len(events) {
		t.Fatalf("reparse: %d events, err %v", len(got), err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ParseAllBinary(bytes.NewReader([]byte("NOPE\x01xxxx"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAllBinary(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %d events, %v", len(got), err)
	}
	// Completely empty input is NOT a valid empty trace: the header is
	// mandatory, so a zero-byte stream is malformed, not EOF.
	p := NewBinaryParser(bytes.NewReader(nil))
	if _, err := p.Next(); !errors.Is(err, ErrMalformed) {
		t.Errorf("no header: err = %v, want ErrMalformed", err)
	}
	// A header cut short is a truncation, not a clean end.
	p = NewBinaryParser(bytes.NewReader([]byte(binaryMagic[:3])))
	if _, err := p.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short header: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestBinaryTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Emit(sampleEvent())
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-event at several points; every cut must error, not silently
	// succeed with garbage.
	for cut := len(binaryMagic) + 1; cut < len(full)-1; cut += 3 {
		_, err := ParseAllBinary(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryDanglingDictRef(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	// seq=1, pid=1, name = dictionary ref 5 (never introduced).
	buf.Write([]byte{1, 1, 5})
	if _, err := ParseAllBinary(&buf); err == nil {
		t.Error("dangling dictionary reference accepted")
	}
}

func TestBinaryWriterErrorSticky(t *testing.T) {
	w := NewBinaryWriter(failingWriter{})
	w.Emit(sampleEvent())
	if err := w.Flush(); err == nil {
		t.Error("writer error not propagated")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestBinaryLargeTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	var want []Event
	names := []string{"open", "read", "write", "close", "lseek"}
	for i := 0; i < 10_000; i++ {
		ev := Event{
			Seq: uint64(i + 1), PID: 1 + rng.Intn(3),
			Name: names[rng.Intn(len(names))],
			Args: map[string]int64{"fd": int64(rng.Intn(20)), "count": rng.Int63n(1 << 30)},
			Ret:  int64(rng.Intn(1 << 20)),
		}
		if rng.Intn(5) == 0 {
			ev.Err = sys.ENOENT
			ev.Ret = -int64(sys.ENOENT)
		}
		want = append(want, ev)
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAllBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !eventsEquivalent(&got[i], &want[i]) {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestBinaryV2RoundTrip(t *testing.T) {
	// Sequence numbers that exercise the delta encoding hard: monotonic
	// steps, repeats, large jumps, a backwards jump (negative delta), and
	// the extremes of the uint64 domain (wraparound deltas).
	seqs := []uint64{1, 2, 3, 3, 1 << 40, 7, 0, ^uint64(0), 5}
	var events []Event
	for i, seq := range seqs {
		events = append(events, Event{
			Seq: seq, PID: i + 1, Name: "write",
			Args: map[string]int64{"fd": 3, "count": int64(i * 100)},
			Ret:  int64(i * 100),
		})
	}
	var buf bytes.Buffer
	w := NewBinaryWriterV2(&buf)
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	p := NewBinaryParser(bytes.NewReader(buf.Bytes()))
	var got []Event
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if p.Version() != 2 {
		t.Errorf("Version() = %d, want 2", p.Version())
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d, want %d", len(got), len(events))
	}
	for i := range events {
		if !eventsEquivalent(&got[i], &events[i]) {
			t.Errorf("event %d:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestBinaryV2SmallerThanV1(t *testing.T) {
	// Large absolute sequence numbers cost ~1 varint byte per event in v2
	// (delta 1) versus many in v1 — the reason v2 exists.
	var v1, v2 bytes.Buffer
	w1, w2 := NewBinaryWriter(&v1), NewBinaryWriterV2(&v2)
	for i := 0; i < 1000; i++ {
		ev := Event{Seq: uint64(1<<56 + i), PID: 1, Name: "sync"}
		w1.Emit(ev)
		w2.Emit(ev)
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Errorf("v2 stream %d bytes not smaller than v1 %d", v2.Len(), v1.Len())
	}
}

func TestBinaryUnknownVersion(t *testing.T) {
	if _, err := ParseAllBinary(bytes.NewReader([]byte(binaryMagicPrefix + "\x03"))); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown version: err = %v, want ErrMalformed", err)
	}
}

func TestBinaryPIDOverflowRejected(t *testing.T) {
	// A pid uvarint >= 2^63 used to wrap negative through int(pid); both
	// decoders must now reject it as malformed.
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	seqPid := binary.AppendUvarint(nil, 1)       // seq
	seqPid = binary.AppendUvarint(seqPid, 1<<63) // pid: wraps negative as int
	buf.Write(seqPid)
	if _, err := ParseAllBinary(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrMalformed) {
		t.Errorf("BinaryParser: pid 2^63 err = %v, want ErrMalformed", err)
	}
	d := NewBatchDecoder(bytes.NewReader(buf.Bytes()))
	var ev Event
	if _, err := d.Next(&ev); !errors.Is(err, ErrMalformed) {
		t.Errorf("BatchDecoder: pid 2^63 err = %v, want ErrMalformed", err)
	}
}
