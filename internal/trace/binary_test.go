package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"iocov/internal/sys"
)

func TestBinaryRoundTrip(t *testing.T) {
	events := []Event{
		sampleEvent(),
		{Seq: 43, PID: 7, Name: "write",
			Args: map[string]int64{"fd": 3, "count": 4096},
			Ret:  -int64(sys.ENOSPC), Err: sys.ENOSPC},
		{Seq: 44, PID: 8, Name: "sync"},
		{Seq: 45, PID: 7, Name: "setxattr", Path: "/mnt/test/x",
			Strs: map[string]string{"pathname": "/mnt/test/x", "name": "user.k"},
			Args: map[string]int64{"size": 0, "flags": 2}},
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAllBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d, want %d", len(got), len(events))
	}
	for i := range events {
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Errorf("event %d:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestBinaryDictionaryCompression(t *testing.T) {
	// Many events with repeating names/keys/paths: the binary stream must
	// be much smaller than the text stream.
	rng := rand.New(rand.NewSource(1))
	var events []Event
	for i := 0; i < 2000; i++ {
		events = append(events, Event{
			Seq: uint64(i + 1), PID: 1, Name: "write",
			Args: map[string]int64{"fd": 3, "count": int64(rng.Intn(1 << 20))},
			Ret:  1,
		})
	}
	var bin, txt bytes.Buffer
	bw := NewBinaryWriter(&bin)
	tw := NewWriter(&txt)
	for _, ev := range events {
		bw.Emit(ev)
		tw.Emit(ev)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*3 > txt.Len() {
		t.Errorf("binary %d bytes vs text %d: expected at least 3x compression", bin.Len(), txt.Len())
	}
	got, err := ParseAllBinary(&bin)
	if err != nil || len(got) != len(events) {
		t.Fatalf("reparse: %d events, err %v", len(got), err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ParseAllBinary(bytes.NewReader([]byte("NOPE\x01xxxx"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAllBinary(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %d events, %v", len(got), err)
	}
	// Completely empty input (no header) is EOF at the first event.
	p := NewBinaryParser(bytes.NewReader(nil))
	if _, err := p.Next(); err != io.EOF {
		t.Errorf("no header: err = %v, want EOF", err)
	}
}

func TestBinaryTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Emit(sampleEvent())
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-event at several points; every cut must error, not silently
	// succeed with garbage.
	for cut := len(binaryMagic) + 1; cut < len(full)-1; cut += 3 {
		_, err := ParseAllBinary(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryDanglingDictRef(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	// seq=1, pid=1, name = dictionary ref 5 (never introduced).
	buf.Write([]byte{1, 1, 5})
	if _, err := ParseAllBinary(&buf); err == nil {
		t.Error("dangling dictionary reference accepted")
	}
}

func TestBinaryWriterErrorSticky(t *testing.T) {
	w := NewBinaryWriter(failingWriter{})
	w.Emit(sampleEvent())
	if err := w.Flush(); err == nil {
		t.Error("writer error not propagated")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestBinaryLargeTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	var want []Event
	names := []string{"open", "read", "write", "close", "lseek"}
	for i := 0; i < 10_000; i++ {
		ev := Event{
			Seq: uint64(i + 1), PID: 1 + rng.Intn(3),
			Name: names[rng.Intn(len(names))],
			Args: map[string]int64{"fd": int64(rng.Intn(20)), "count": rng.Int63n(1 << 30)},
			Ret:  int64(rng.Intn(1 << 20)),
		}
		if rng.Intn(5) == 0 {
			ev.Err = sys.ENOENT
			ev.Ret = -int64(sys.ENOENT)
		}
		want = append(want, ev)
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAllBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d mismatch", i)
		}
	}
}
