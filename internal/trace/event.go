// Package trace provides the tracing substrate that stands in for LTTng in
// this reproduction: an event model for syscall entry/exit records, an
// LTTng-style text serialization (writer + parser), and the stateful
// mount-point filter IOCov applies before analysis.
//
// The simulated kernel emits one Event per completed syscall into a Sink.
// Events can be analyzed live (Collector) or round-tripped through the text
// format the way IOCov consumes LTTng trace files.
package trace

import (
	"sort"

	"iocov/internal/sys"
)

// Event is one completed syscall observation: name, arguments, and outcome.
// Numeric arguments live in Args; string arguments (paths, xattr names) in
// Strs. Path carries the syscall's primary path argument when it has one,
// duplicated from Strs for cheap filtering.
//
// Arguments have two equivalent representations. Producers that build
// events by hand (parsers, tests, the syz executor) populate the Args/Strs
// maps directly. Hot-path producers (the simulated kernel) record through
// AddArg/AddStr, which fill fixed-size inline storage first and spill to
// the maps only past capacity, so a typical syscall event allocates
// nothing. The Arg/Str accessors and the serializers read both
// representations; no syscall records the same key twice.
type Event struct {
	// Seq is a monotonically increasing sequence number assigned by the
	// emitting process.
	Seq uint64
	// PID identifies the emitting simulated process.
	PID int
	// Name is the raw syscall name before variant merging, e.g. "openat".
	Name string
	// Path is the primary path argument ("" for fd-only syscalls).
	Path string
	// Args holds the numeric arguments keyed by their ABI names
	// ("flags", "mode", "count", "offset", "whence", "size", ...).
	Args map[string]int64
	// Strs holds string arguments keyed by name ("filename", "name", ...).
	Strs map[string]string
	// Ret is the return value (valid when Err == sys.OK).
	Ret int64
	// Err is the errno outcome; sys.OK on success.
	Err sys.Errno

	// Inline argument storage; see AddArg/AddStr. Four numeric slots and
	// two string slots cover every syscall the simulated kernel traces
	// (fallocate's fd/mode/offset/len is the widest).
	iargs [4]argPair
	istrs [2]strPair
	nargs uint8
	nstrs uint8
}

type argPair struct {
	name string
	val  int64
}

type strPair struct {
	name, val string
}

// AddArg records a numeric argument, using inline storage while it lasts
// and spilling to the Args map past capacity.
//
//iocov:hotpath
func (e *Event) AddArg(name string, v int64) {
	if int(e.nargs) < len(e.iargs) {
		e.iargs[e.nargs] = argPair{name, v}
		e.nargs++
		return
	}
	if e.Args == nil {
		e.Args = make(map[string]int64)
	}
	e.Args[name] = v
}

// AddStr records a string argument, using inline storage while it lasts
// and spilling to the Strs map past capacity.
//
//iocov:hotpath
func (e *Event) AddStr(name, v string) {
	if int(e.nstrs) < len(e.istrs) {
		e.istrs[e.nstrs] = strPair{name, v}
		e.nstrs++
		return
	}
	if e.Strs == nil {
		e.Strs = make(map[string]string)
	}
	e.Strs[name] = v
}

// Arg returns a numeric argument and whether it was recorded.
//
//iocov:hotpath
//iocov:bounds-ok nargs never exceeds len(iargs): AddArg spills to the Args map once the inline array is full
func (e *Event) Arg(name string) (int64, bool) {
	for i := 0; i < int(e.nargs); i++ {
		if e.iargs[i].name == name {
			return e.iargs[i].val, true
		}
	}
	v, ok := e.Args[name]
	return v, ok
}

// Str returns a string argument and whether it was recorded.
//
//iocov:hotpath
//iocov:bounds-ok nstrs never exceeds len(istrs): AddStr spills to the Strs map once the inline array is full
func (e *Event) Str(name string) (string, bool) {
	for i := 0; i < int(e.nstrs); i++ {
		if e.istrs[i].name == name {
			return e.istrs[i].val, true
		}
	}
	v, ok := e.Strs[name]
	return v, ok
}

// Failed reports whether the syscall returned an error.
func (e *Event) Failed() bool { return e.Err != sys.OK }

// primaryPathArg reconstructs the event's primary path argument from its
// string arguments — inline or spilled — in the precedence the kernel layer
// uses when emitting. The parsers call it to rebuild Path after decoding.
//
//iocov:hotpath
func (e *Event) primaryPathArg() string {
	if v, ok := e.Str("filename"); ok {
		return v
	}
	if v, ok := e.Str("pathname"); ok {
		return v
	}
	if v, ok := e.Str("path"); ok {
		return v
	}
	if v, ok := e.Str("oldname"); ok {
		return v
	}
	return ""
}

// EachArg calls fn for every numeric argument, in unspecified order.
func (e *Event) EachArg(fn func(name string, v int64)) {
	for i := 0; i < int(e.nargs); i++ {
		fn(e.iargs[i].name, e.iargs[i].val)
	}
	for k, v := range e.Args {
		fn(k, v)
	}
}

// EachStr calls fn for every string argument, in unspecified order.
func (e *Event) EachStr(fn func(name, v string)) {
	for i := 0; i < int(e.nstrs); i++ {
		fn(e.istrs[i].name, e.istrs[i].val)
	}
	for k, v := range e.Strs {
		fn(k, v)
	}
}

// numArgs returns the total numeric argument count across both
// representations.
func (e *Event) numArgs() int { return int(e.nargs) + len(e.Args) }

// numStrs returns the total string argument count across both
// representations.
func (e *Event) numStrs() int { return int(e.nstrs) + len(e.Strs) }

// argNames returns the numeric argument keys in deterministic order.
func (e *Event) argNames() []string {
	names := make([]string, 0, e.numArgs())
	for i := 0; i < int(e.nargs); i++ {
		names = append(names, e.iargs[i].name)
	}
	for k := range e.Args {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// strNames returns the string argument keys in deterministic order.
func (e *Event) strNames() []string {
	names := make([]string, 0, e.numStrs())
	for i := 0; i < int(e.nstrs); i++ {
		names = append(names, e.istrs[i].name)
	}
	for k := range e.Strs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Sink receives completed syscall events. Implementations must be safe for
// use from a single emitting goroutine; Collector additionally supports
// concurrent emitters.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f(ev).
func (f SinkFunc) Emit(ev Event) { f(ev) }

// MultiSink fans an event out to several sinks in order.
type MultiSink []Sink

// Emit delivers ev to every sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Collector is an in-memory Sink that retains every event, in order.
type Collector struct {
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends ev.
func (c *Collector) Emit(ev Event) { c.events = append(c.events, ev) }

// Events returns the collected events (the backing slice; callers must not
// mutate it while still emitting).
func (c *Collector) Events() []Event { return c.events }

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.events) }

// Reset discards all collected events.
func (c *Collector) Reset() { c.events = c.events[:0] }

// CountingSink counts events without retaining them; the benchmark harness
// uses it to measure emission overhead in isolation.
type CountingSink struct {
	N int64
}

// Emit increments the counter.
//
//iocov:hotpath
func (c *CountingSink) Emit(Event) { c.N++ }
