package trace

import (
	"regexp"
	"regexp/syntax"
	"strings"
)

// Filter reproduces IOCov's trace filter: file-system testers use a
// dedicated mount point (e.g. /mnt/test for xfstests), and only syscalls
// that touch it should be analyzed. Path-carrying events are matched against
// a mount-point regexp; fd-carrying events are resolved through the fd table
// the filter reconstructs from successful opens, because a raw LTTng trace
// identifies files only by descriptor after the open.
//
// Filter is stateful and single-goroutine, like the analyzer pipeline.
type Filter struct {
	mount *regexp.Regexp
	// lit/litSlash implement the anchored-literal fast path: when the
	// pattern has the canonical harness.MountPattern shape ^<literal>(/|$),
	// matching reduces to path == lit || HasPrefix(path, litSlash), which
	// skips the regexp machine on every event.
	lit      string
	litSlash string
	// fds maps pid -> fd -> path for descriptors opened under the mount.
	fds map[int]map[int64]string
	// outside maps pid -> fd for descriptors opened elsewhere, so EBADF
	// reuse after close doesn't leak foreign descriptors into the trace.
	outside map[int]map[int64]bool

	kept    int64
	dropped int64
}

// NewFilter compiles the mount-point pattern. The pattern is matched with
// regexp.MatchString semantics against the syscall's primary path argument,
// so "^/mnt/test(/|$)" selects exactly one mount.
func NewFilter(mountPattern string) (*Filter, error) {
	re, err := regexp.Compile(mountPattern)
	if err != nil {
		return nil, err
	}
	f := &Filter{
		mount:   re,
		fds:     make(map[int]map[int64]string),
		outside: make(map[int]map[int64]bool),
	}
	f.lit, f.litSlash = mountLiteral(mountPattern)
	return f, nil
}

// Fresh returns a new filter over the same (already compiled) mount
// pattern with empty descriptor-table and accounting state. The ingest
// daemon keeps one compiled prototype and clones it per session, so the
// per-stream setup cost is two map headers instead of a regexp compile.
func (f *Filter) Fresh() *Filter {
	return &Filter{
		mount:    f.mount,
		lit:      f.lit,
		litSlash: f.litSlash,
		fds:      make(map[int]map[int64]string),
		outside:  make(map[int]map[int64]bool),
	}
}

// Reset clears the filter's descriptor-table and accounting state, keeping
// the compiled pattern, so a pooled session can reuse the filter with
// fresh-filter semantics.
func (f *Filter) Reset() {
	clear(f.fds)
	clear(f.outside)
	f.kept, f.dropped = 0, 0
}

// mountLiteral recognizes the ^<literal>(/|$) pattern shape that
// harness.MountPattern produces and returns the bare literal plus its
// "literal/" prefix form. Any other shape returns empty strings and the
// filter falls back to the compiled regexp.
func mountLiteral(pattern string) (lit, litSlash string) {
	if !strings.HasPrefix(pattern, "^") || !strings.HasSuffix(pattern, "(/|$)") {
		return "", ""
	}
	body := pattern[1 : len(pattern)-len("(/|$)")]
	if body == "" || regexp.QuoteMeta(body) != body {
		return "", ""
	}
	// QuoteMeta passing still admits non-metacharacter operators that a
	// parse reveals (nothing today, but cheap insurance): require the body
	// to parse as a pure literal.
	re, err := syntax.Parse(body, syntax.Perl)
	if err != nil || re.Simplify().Op != syntax.OpLiteral {
		return "", ""
	}
	return body, body + "/"
}

// matchMount reports whether path is under the filtered mount, preferring
// the literal-prefix fast path over the regexp.
func (f *Filter) matchMount(path string) bool {
	if f.lit != "" {
		return path == f.lit || strings.HasPrefix(path, f.litSlash)
	}
	return f.mount.MatchString(path)
}

// openFamily are the syscalls whose success installs a descriptor.
var openFamily = map[string]bool{
	"open": true, "openat": true, "creat": true, "openat2": true,
}

// fdSyscalls are the traced syscalls that operate on a descriptor argument.
var fdSyscalls = map[string]bool{
	"read": true, "pread64": true, "readv": true,
	"write": true, "pwrite64": true, "writev": true,
	"lseek": true, "ftruncate": true, "fchmod": true,
	"close": true, "fchdir": true,
	"fsetxattr": true, "fgetxattr": true, "fremovexattr": true,
	"fsync": true, "fdatasync": true, "fallocate": true,
}

// Keep decides whether ev belongs to the filesystem under test, updating the
// reconstructed fd table as a side effect. Events must be offered in trace
// order.
//
//iocov:hotpath
func (f *Filter) Keep(ev Event) bool { return f.KeepRef(&ev) }

// KeepRef is Keep without the event copy: the batch-decode ingest path
// offers its reused decode event by pointer. The event is not retained or
// mutated.
//
//iocov:hotpath
func (f *Filter) KeepRef(ev *Event) bool {
	keep := f.classify(ev)
	if keep {
		f.kept++
	} else {
		f.dropped++
	}
	return keep
}

// classify decides scope from first principles: open-family path match,
// descriptor propagation through dup, then any absolute string argument
// under the mount.
//
//iocov:bounds-ok nstrs never exceeds len(istrs): AddStr spills to the Strs map once the inline array is full
func (f *Filter) classify(ev *Event) bool {
	if openFamily[ev.Name] {
		match := ev.Path != "" && f.matchMount(ev.Path)
		if !ev.Failed() && ev.Ret >= 0 {
			if match {
				f.pidFds(ev.PID)[ev.Ret] = ev.Path
				delete(f.outside[ev.PID], ev.Ret)
			} else {
				f.pidOutside(ev.PID)[ev.Ret] = true
				delete(f.fds[ev.PID], ev.Ret)
			}
		}
		return match
	}
	// dup/dup2 propagate descriptor tracking: a duplicate of an in-mount
	// descriptor is itself in scope.
	if ev.Name == "dup" || ev.Name == "dup2" {
		src, ok := ev.Arg("fildes")
		if !ok {
			src, ok = ev.Arg("oldfd")
		}
		if !ok {
			return false
		}
		path, tracked := f.fds[ev.PID][src]
		if !ev.Failed() && ev.Ret >= 0 {
			if tracked {
				f.pidFds(ev.PID)[ev.Ret] = path
				delete(f.outside[ev.PID], ev.Ret)
			} else {
				f.pidOutside(ev.PID)[ev.Ret] = true
				delete(f.fds[ev.PID], ev.Ret)
			}
		}
		return tracked
	}
	if fdSyscalls[ev.Name] {
		fd, ok := ev.Arg("fd")
		if !ok {
			return false
		}
		_, tracked := f.fds[ev.PID][fd]
		if ev.Name == "close" && !ev.Failed() {
			delete(f.fds[ev.PID], fd)
			delete(f.outside[ev.PID], fd)
		}
		return tracked
	}
	// Path-based syscalls (truncate, mkdir, chmod, chdir, *xattr, ...).
	// Two-path syscalls (rename, link, symlink) are in scope when either
	// side touches the mount, so every absolute string argument is
	// checked, not just the primary path.
	if ev.Path != "" && f.matchMount(ev.Path) {
		return true
	}
	for i := 0; i < int(ev.nstrs); i++ {
		if v := ev.istrs[i].val; len(v) > 0 && v[0] == '/' && f.matchMount(v) {
			return true
		}
	}
	for _, v := range ev.Strs {
		if len(v) > 0 && v[0] == '/' && f.matchMount(v) {
			return true
		}
	}
	return false
}

// Apply filters a slice of events, returning the kept ones in order.
func (f *Filter) Apply(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for _, ev := range events {
		if f.Keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Stats reports how many events were kept and dropped so far.
func (f *Filter) Stats() (kept, dropped int64) { return f.kept, f.dropped }

func (f *Filter) pidFds(pid int) map[int64]string {
	m := f.fds[pid]
	if m == nil {
		m = make(map[int64]string)
		f.fds[pid] = m
	}
	return m
}

func (f *Filter) pidOutside(pid int) map[int64]bool {
	m := f.outside[pid]
	if m == nil {
		m = make(map[int64]bool)
		f.outside[pid] = m
	}
	return m
}

// FilteringSink wraps a Sink, forwarding only events the Filter keeps. It
// lets a live tracer drop out-of-scope syscalls before they reach the
// analyzer, the way IOCov's pipeline discards non-test records.
type FilteringSink struct {
	F    *Filter
	Next Sink
}

// Emit forwards ev when the filter keeps it.
//
//iocov:hotpath
func (s *FilteringSink) Emit(ev Event) {
	if s.F.Keep(ev) {
		s.Next.Emit(ev)
	}
}
