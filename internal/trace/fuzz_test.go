package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"iocov/internal/sys"
)

// FuzzBinaryRoundTrip pins the codec's round-trip contract: any event the
// writer can serialize — whether built through the Args/Strs maps or the
// inline AddArg/AddStr storage — must come back from the parser semantically
// identical. The ingest daemon depends on this equivalence: clients stream
// inline-built kernel events, the daemon analyzes the parsed map-built form.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(1), 7, "open", "pathname", "/mnt/test/a", "flags", int64(0x42), int64(3), uint16(0), true)
	f.Add(uint64(99), 1, "write", "", "", "count", int64(-9000), int64(-28), uint16(28), false)
	f.Add(uint64(0), 0, "", "name", "user.attr", "size", int64(1<<40), int64(0), uint16(22), true)
	f.Fuzz(func(t *testing.T, seq uint64, pid int, name, sk, sv, ak string, av, ret int64, errno uint16, inline bool) {
		// The codec only transports non-negative pids (a >= 2^63 wire value
		// is rejected as malformed, by design); fuzz within the contract.
		pid &= 1<<63 - 1
		ev := Event{Seq: seq, PID: pid, Name: name, Ret: ret, Err: sys.Errno(errno)}
		if inline {
			ev.AddStr(sk, sv)
			ev.AddArg(ak, av)
		} else {
			ev.Strs = map[string]string{sk: sv}
			ev.Args = map[string]int64{ak: av}
		}
		check := func(version string, g *Event) {
			t.Helper()
			if g.Seq != seq || g.PID != pid || g.Name != name || g.Ret != ret || g.Err != sys.Errno(errno) {
				t.Errorf("%s scalar fields: got %+v", version, g)
			}
			if v, ok := g.Str(sk); !ok || v != sv {
				t.Errorf("%s Str(%q) = %q, %v; want %q", version, sk, v, ok, sv)
			}
			if v, ok := g.Arg(ak); !ok || v != av {
				t.Errorf("%s Arg(%q) = %d, %v; want %d", version, ak, v, ok, av)
			}
			if g.numStrs() != 1 || g.numArgs() != 1 {
				t.Errorf("%s pair counts: %d strs, %d args; want 1, 1", version, g.numStrs(), g.numArgs())
			}
			if want := ev.primaryPathArg(); g.Path != want {
				t.Errorf("%s Path = %q, want %q", version, g.Path, want)
			}
		}
		for _, tc := range []struct {
			version string
			write   func(*bytes.Buffer) *BinaryWriter
		}{
			{"v1", func(b *bytes.Buffer) *BinaryWriter { return NewBinaryWriter(b) }},
			{"v2", func(b *bytes.Buffer) *BinaryWriter { return NewBinaryWriterV2(b) }},
		} {
			var buf bytes.Buffer
			w := tc.write(&buf)
			w.Emit(ev)
			if err := w.Flush(); err != nil {
				t.Fatalf("%s Flush: %v", tc.version, err)
			}
			// The reference decoder.
			got, err := ParseAllBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s parse back: %v", tc.version, err)
			}
			if len(got) != 1 {
				t.Fatalf("%s parsed %d events, want 1", tc.version, len(got))
			}
			check(tc.version, &got[0])
			// The batch decoder must agree byte for byte.
			d := NewBatchDecoder(bytes.NewReader(buf.Bytes()))
			var bev Event
			if _, err := d.Next(&bev); err != nil {
				t.Fatalf("%s batch decode: %v", tc.version, err)
			}
			check(tc.version+"-batch", &bev)
			if _, err := d.Next(&bev); err != io.EOF {
				t.Fatalf("%s batch decode tail: err = %v, want EOF", tc.version, err)
			}
		}
	})
}

// FuzzBinaryReaderMalformed feeds the parser raw untrusted bytes — the exact
// exposure of the daemon's /ingest endpoint — and requires that it never
// panics and always terminates with a clean event or a typed error. The
// seeds include the pre-hardening crasher: a dictionary reference whose
// 64-bit id wrapped negative when converted to int.
func FuzzBinaryReaderMalformed(f *testing.F) {
	// A small valid stream.
	var valid bytes.Buffer
	w := NewBinaryWriter(&valid)
	w.Emit(Event{Seq: 1, PID: 2, Name: "open",
		Strs: map[string]string{"pathname": "/mnt/test/f"},
		Args: map[string]int64{"flags": 66}, Ret: 3})
	w.Emit(Event{Seq: 2, PID: 2, Name: "close", Args: map[string]int64{"fd": 3}})
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])

	// The old int-overflow crasher: seq, pid, then name = dict ref 1<<63.
	evil := []byte(binaryMagic)
	evil = binary.AppendUvarint(evil, 1)     // seq
	evil = binary.AppendUvarint(evil, 1)     // pid
	evil = binary.AppendUvarint(evil, 1<<63) // name: huge dictionary id
	f.Add(evil)

	// A declared string length just over the cap, with no data behind it.
	huge := []byte(binaryMagic)
	huge = binary.AppendUvarint(huge, 1)              // seq
	huge = binary.AppendUvarint(huge, 1)              // pid
	huge = binary.AppendUvarint(huge, 0)              // name: new dict entry
	huge = binary.AppendUvarint(huge, maxStringLen+1) // declared length over cap
	f.Add(huge)

	// A pid that wraps negative when converted to int unchecked.
	bigpid := []byte(binaryMagic)
	bigpid = binary.AppendUvarint(bigpid, 1)     // seq
	bigpid = binary.AppendUvarint(bigpid, 1<<63) // pid: overflows int
	f.Add(bigpid)

	// A v2 header over an otherwise-v1-shaped body, and an unknown version.
	f.Add(append([]byte(binaryMagicV2), valid.Bytes()[len(binaryMagic):]...))
	f.Add([]byte(binaryMagicPrefix + "\x07"))
	// The zero-byte stream: must be ErrMalformed, never a silent empty trace.
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The reference decoder: never panics, always terminates with a
		// typed error or a clean EOF.
		refEvents, refErr := 0, error(nil)
		p := NewBinaryParser(bytes.NewReader(data))
		for i := 0; i < 1<<12; i++ {
			_, err := p.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Any other error must be a typed decode failure, not
				// an unclassified one.
				if !errors.Is(err, ErrMalformed) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("untyped parse error: %v", err)
				}
				refErr = err
				break
			}
			refEvents++
		}

		// The batch decoder: same exposure, same obligations — and it must
		// agree with the reference decoder on how many events the prefix
		// holds and on accept-vs-reject.
		var ev Event
		batchEvents, batchErr := 0, error(nil)
		d := NewBatchDecoder(bytes.NewReader(data))
		for i := 0; i < 1<<12; i++ {
			_, err := d.Next(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrMalformed) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("untyped batch decode error: %v", err)
				}
				batchErr = err
				break
			}
			batchEvents++
		}
		if refEvents != batchEvents || (refErr == nil) != (batchErr == nil) {
			t.Fatalf("decoder divergence: reference %d events (err %v), batch %d events (err %v)",
				refEvents, refErr, batchEvents, batchErr)
		}
	})
}
