package trace

import (
	"bytes"
	"reflect"
	"testing"

	"iocov/internal/sys"
)

// TestBatchDecoderReset: a decoder recycled across streams — including
// after a mid-stream failure — must decode the next stream exactly like a
// fresh decoder: same events, same ordinals, no dictionary or sequence
// state bleeding through.
func TestBatchDecoderReset(t *testing.T) {
	first := encodeEvents(t, batchTestEvents(64), 2)
	second := encodeEvents(t, batchTestEvents(32), 1) // different version, different dict

	d := NewBatchDecoder(bytes.NewReader(first))
	_, _ = decodeBatch(t, d)

	// Poison: replay the first stream truncated mid-event, then Reset again.
	d.Reset(bytes.NewReader(first[:len(first)/2]))
	var ev Event
	for {
		if _, err := d.Next(&ev); err != nil {
			break
		}
	}

	d.Reset(bytes.NewReader(second))
	gotEvs, gotIDs := decodeBatch(t, d)

	ref := NewBatchDecoder(bytes.NewReader(second))
	wantEvs, wantIDs := decodeBatch(t, ref)
	if d.Version() != ref.Version() {
		t.Errorf("version after reset = %d, fresh = %d", d.Version(), ref.Version())
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Errorf("ordinals after reset differ: got %v want %v", gotIDs, wantIDs)
	}
	if !reflect.DeepEqual(gotEvs, wantEvs) {
		t.Errorf("events after reset differ from fresh decode")
	}
}

// TestFilterReset: recycled filters must not leak descriptor tracking from
// an earlier session.
func TestFilterReset(t *testing.T) {
	f, err := NewFilter(`^/mnt/test(/|$)`)
	if err != nil {
		t.Fatal(err)
	}
	open := Event{Name: "open", PID: 9, Path: "/mnt/test/x", Ret: 7}
	open.AddStr("filename", "/mnt/test/x")
	open.AddArg("flags", 0)
	if !f.Keep(open) {
		t.Fatal("in-mount open not kept")
	}
	f.Reset()
	if kept, dropped := f.Stats(); kept != 0 || dropped != 0 {
		t.Errorf("stats after reset = %d/%d", kept, dropped)
	}
	// fd 7 of pid 9 was tracked before Reset; a fresh filter drops it.
	wr := Event{Name: "write", PID: 9, Ret: 4, Err: sys.OK}
	wr.AddArg("fd", 7)
	wr.AddArg("count", 4)
	if f.Keep(wr) {
		t.Error("stale fd table survived Reset")
	}
}
