package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"iocov/internal/sys"
)

// corpusBytes builds a valid trace in both formats for mutation testing.
func corpusBytes(t *testing.T) (text, bin []byte) {
	t.Helper()
	events := []Event{
		{Seq: 1, PID: 1, Name: "openat", Path: "/mnt/test/f",
			Strs: map[string]string{"filename": "/mnt/test/f"},
			Args: map[string]int64{"dfd": -100, "flags": 577, "mode": 420}, Ret: 3},
		{Seq: 2, PID: 1, Name: "write",
			Args: map[string]int64{"fd": 3, "count": 4096}, Ret: 4096},
		{Seq: 3, PID: 1, Name: "close",
			Args: map[string]int64{"fd": 3}, Ret: -int64(sys.EBADF), Err: sys.EBADF},
	}
	var tb, bb bytes.Buffer
	tw, bw := NewWriter(&tb), NewBinaryWriter(&bb)
	for _, ev := range events {
		tw.Emit(ev)
		bw.Emit(ev)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), bb.Bytes()
}

// TestTextParserNeverPanics: random single-byte mutations of a valid text
// trace either parse or error — no panics, no hangs.
func TestTextParserNeverPanics(t *testing.T) {
	text, _ := corpusBytes(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		mut := append([]byte(nil), text...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			pos := rng.Intn(len(mut))
			mut[pos] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %d: %v\ninput: %q", i, r, mut)
				}
			}()
			_, _ = ParseAll(bytes.NewReader(mut))
		}()
	}
}

// TestBinaryParserNeverPanics: same for the binary format, plus truncations
// and random garbage.
func TestBinaryParserNeverPanics(t *testing.T) {
	_, bin := corpusBytes(t)
	rng := rand.New(rand.NewSource(2))
	check := func(input []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic: %v\ninput: %v", r, input)
			}
		}()
		_, _ = ParseAllBinary(bytes.NewReader(input))
	}
	for i := 0; i < 3000; i++ {
		mut := append([]byte(nil), bin...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		check(mut)
	}
	for i := 0; i < len(bin); i++ {
		check(bin[:i]) // every truncation point
	}
	for i := 0; i < 500; i++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)
		check(append([]byte("IOCV\x01"), garbage...))
	}
}

// TestBinaryParserBoundsHostileLengths: adversarial length fields must be
// rejected before allocation, not cause OOM.
func TestBinaryParserBoundsHostileLengths(t *testing.T) {
	// Header + seq=1 + pid=1 + new string with a 2^40 length claim.
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{1, 1, 0})                            // seq, pid, dict-intro
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x20}) // uvarint 2^40-ish
	if _, err := ParseAllBinary(&buf); err == nil {
		t.Error("hostile string length accepted")
	}
}

// TestFilterNeverPanicsOnArbitraryEvents: events with nil maps, weird
// names, and hostile paths pass through the filter without panics.
func TestFilterNeverPanicsOnArbitraryEvents(t *testing.T) {
	f, _ := NewFilter(`^/mnt/test(/|$)`)
	events := []Event{
		{},
		{Name: "close"},
		{Name: "read", Args: map[string]int64{}},
		{Name: "open", Ret: 3},
		{Name: "open", Path: "\x00\xff", Ret: 3},
		{Name: "write", Args: map[string]int64{"fd": -1 << 62}},
		{Name: "rename", Strs: map[string]string{"oldname": "", "newname": "/"}},
	}
	for _, ev := range events {
		_ = f.Keep(ev)
	}
}
