package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"iocov/internal/sys"
)

// The text format mirrors the shape of LTTng's syscall exit records, one
// event per line:
//
//	[00000042] syscall_exit_openat: pid = 7 { dirfd = -100, filename = "/mnt/test/f0", flags = 577, mode = 420 } ret = 3
//	[00000043] syscall_exit_write: pid = 7 { fd = 3, count = 4096 } ret = -28 (ENOSPC)
//
// String arguments are quoted with Go quoting (which is a superset of the
// escaping LTTng applies); numeric arguments are decimal. Failed syscalls
// carry ret = -errno followed by the symbolic name in parentheses.

// Writer serializes events to an io.Writer in the text format. It implements
// Sink. Call Flush before reading the output.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Emit writes one event line. Errors are sticky and reported by Flush.
func (w *Writer) Emit(ev Event) {
	if w.err != nil {
		return
	}
	w.err = WriteEvent(w.bw, ev)
}

// Flush flushes buffered output and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// WriteEvent serializes a single event line to w.
func WriteEvent(w io.Writer, ev Event) error {
	var b strings.Builder
	fmt.Fprintf(&b, "[%08d] syscall_exit_%s: pid = %d {", ev.Seq, ev.Name, ev.PID)
	first := true
	for _, k := range ev.strNames() {
		if !first {
			b.WriteString(",")
		}
		first = false
		v, _ := ev.Str(k)
		fmt.Fprintf(&b, " %s = %s", k, strconv.Quote(v))
	}
	for _, k := range ev.argNames() {
		if !first {
			b.WriteString(",")
		}
		first = false
		v, _ := ev.Arg(k)
		fmt.Fprintf(&b, " %s = %d", k, v)
	}
	b.WriteString(" }")
	if ev.Err == sys.OK {
		fmt.Fprintf(&b, " ret = %d", ev.Ret)
	} else {
		fmt.Fprintf(&b, " ret = %d (%s)", -int64(ev.Err), ev.Err.Name())
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ParseError reports a malformed trace line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parser reads events back from the text format.
type Parser struct {
	sc   *bufio.Scanner
	line int
}

// NewParser returns a Parser reading from r.
func NewParser(r io.Reader) *Parser {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &Parser{sc: sc}
}

// Next returns the next event, io.EOF at end of input, or a *ParseError.
// Blank lines and lines starting with '#' are skipped.
func (p *Parser) Next() (Event, error) {
	for p.sc.Scan() {
		p.line++
		text := strings.TrimSpace(p.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ev, err := parseLine(text)
		if err != nil {
			return Event{}, &ParseError{Line: p.line, Text: text, Msg: err.Error()}
		}
		return ev, nil
	}
	if err := p.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// ParseAll reads every event from r.
func ParseAll(r io.Reader) ([]Event, error) {
	p := NewParser(r)
	var out []Event
	for {
		ev, err := p.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

func parseLine(text string) (Event, error) {
	var ev Event

	rest, ok := strings.CutPrefix(text, "[")
	if !ok {
		return ev, fmt.Errorf("missing sequence prefix")
	}
	seqStr, rest, ok := strings.Cut(rest, "] syscall_exit_")
	if !ok {
		return ev, fmt.Errorf("missing syscall_exit marker")
	}
	seq, err := strconv.ParseUint(strings.TrimLeft(seqStr, "0 "), 10, 64)
	if err != nil && strings.Trim(seqStr, "0") != "" {
		return ev, fmt.Errorf("bad sequence %q", seqStr)
	}
	ev.Seq = seq

	name, rest, ok := strings.Cut(rest, ": pid = ")
	if !ok {
		return ev, fmt.Errorf("missing pid")
	}
	ev.Name = name

	pidStr, rest, ok := strings.Cut(rest, " {")
	if !ok {
		return ev, fmt.Errorf("missing argument block")
	}
	pid, err := strconv.Atoi(strings.TrimSpace(pidStr))
	if err != nil {
		return ev, fmt.Errorf("bad pid %q", pidStr)
	}
	ev.PID = pid

	argBlock, retPart, ok := cutLast(rest, "} ret = ")
	if !ok {
		return ev, fmt.Errorf("missing return value")
	}
	if err := parseArgs(strings.TrimSpace(argBlock), &ev); err != nil {
		return ev, err
	}
	if err := parseRet(strings.TrimSpace(retPart), &ev); err != nil {
		return ev, err
	}
	ev.Path = ev.primaryPathArg()
	return ev, nil
}

// cutLast cuts s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	idx := strings.LastIndex(s, sep)
	if idx < 0 {
		return s, "", false
	}
	return s[:idx], s[idx+len(sep):], true
}

func parseArgs(block string, ev *Event) error {
	block = strings.TrimSpace(block)
	if block == "" {
		return nil
	}
	for len(block) > 0 {
		eq := strings.Index(block, " = ")
		if eq < 0 {
			return fmt.Errorf("malformed argument block near %q", block)
		}
		key := strings.TrimSpace(strings.TrimPrefix(block[:eq], ","))
		val := block[eq+3:]
		if strings.HasPrefix(val, "\"") {
			str, rest, err := scanQuoted(val)
			if err != nil {
				return err
			}
			if ev.Strs == nil {
				ev.Strs = make(map[string]string)
			}
			ev.Strs[key] = str
			block = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), ","))
		} else {
			numStr, rest, _ := strings.Cut(val, ",")
			n, err := strconv.ParseInt(strings.TrimSpace(numStr), 10, 64)
			if err != nil {
				return fmt.Errorf("bad numeric argument %s=%q", key, numStr)
			}
			if ev.Args == nil {
				ev.Args = make(map[string]int64)
			}
			ev.Args[key] = n
			block = strings.TrimSpace(rest)
		}
	}
	return nil
}

// scanQuoted extracts a leading Go-quoted string and returns the remainder.
func scanQuoted(s string) (value, rest string, err error) {
	if !strings.HasPrefix(s, "\"") {
		return "", "", fmt.Errorf("expected quoted string near %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad quoted string %q: %v", s[:i+1], err)
			}
			return v, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string %q", s)
}

func parseRet(s string, ev *Event) error {
	numStr, errName, hasErr := strings.Cut(s, " (")
	n, err := strconv.ParseInt(strings.TrimSpace(numStr), 10, 64)
	if err != nil {
		return fmt.Errorf("bad return value %q", s)
	}
	if hasErr {
		errName = strings.TrimSuffix(errName, ")")
		e, ok := sys.ErrnoByName(errName)
		if !ok {
			return fmt.Errorf("unknown errno %q", errName)
		}
		if int64(e) != -n {
			return fmt.Errorf("errno %s does not match ret %d", errName, n)
		}
		ev.Err = e
		ev.Ret = n
		return nil
	}
	if n < 0 {
		ev.Err = sys.Errno(-n)
	}
	ev.Ret = n
	return nil
}
