package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"iocov/internal/sys"
)

func sampleEvent() Event {
	return Event{
		Seq:  42,
		PID:  7,
		Name: "openat",
		Path: "/mnt/test/f0",
		Strs: map[string]string{"filename": "/mnt/test/f0"},
		Args: map[string]int64{"dfd": -100, "flags": 577, "mode": 420},
		Ret:  3,
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ev1 := sampleEvent()
	ev2 := Event{
		Seq: 43, PID: 7, Name: "write",
		Args: map[string]int64{"fd": 3, "count": 4096},
		Ret:  -int64(sys.ENOSPC), Err: sys.ENOSPC,
	}
	w.Emit(ev1)
	w.Emit(ev2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAll(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d events, want 2", len(got))
	}
	if !reflect.DeepEqual(got[0], ev1) {
		t.Errorf("event 1:\n got %+v\nwant %+v", got[0], ev1)
	}
	if !reflect.DeepEqual(got[1], ev2) {
		t.Errorf("event 2:\n got %+v\nwant %+v", got[1], ev2)
	}
}

func TestRoundTripQuirkyStrings(t *testing.T) {
	paths := []string{
		`/mnt/test/with space`,
		`/mnt/test/quote"inside`,
		`/mnt/test/back\slash`,
		`/mnt/test/newline\n`,
		"/mnt/test/\x01control",
		`/mnt/test/unicode-日本語`,
		`/mnt/test/comma, equals = brace }`,
	}
	for _, p := range paths {
		ev := Event{Seq: 1, PID: 1, Name: "open", Path: p,
			Strs: map[string]string{"filename": p},
			Args: map[string]int64{"flags": 0, "mode": 0}, Ret: 3}
		var buf bytes.Buffer
		if err := WriteEvent(&buf, ev); err != nil {
			t.Fatal(err)
		}
		got, err := ParseAll(&buf)
		if err != nil {
			t.Fatalf("path %q: %v", p, err)
		}
		if got[0].Path != p {
			t.Errorf("path %q round-tripped to %q", p, got[0].Path)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	names := []string{"open", "read", "write", "lseek", "setxattr", "close"}
	cfg := &quick.Config{MaxCount: 300}
	f := func(seq uint64, pid uint16, nameIdx uint8, flags int64, count int64, fail bool, pathSuffix string) bool {
		if count < 0 {
			count = -count // syscall byte counts are non-negative
		}
		ev := Event{
			Seq:  seq,
			PID:  int(pid),
			Name: names[int(nameIdx)%len(names)],
			Args: map[string]int64{"flags": flags, "count": count},
		}
		if pathSuffix != "" {
			path := "/mnt/test/" + strings.ReplaceAll(pathSuffix, "\x00", "_")
			ev.Path = path
			ev.Strs = map[string]string{"filename": path}
		}
		if fail {
			ev.Err = sys.ENOENT
			ev.Ret = -int64(sys.ENOENT)
		} else {
			ev.Ret = count
		}
		var buf bytes.Buffer
		if err := WriteEvent(&buf, ev); err != nil {
			return false
		}
		got, err := ParseAll(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return reflect.DeepEqual(got[0], ev)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParserSkipsCommentsAndBlanks(t *testing.T) {
	input := "# a comment\n\n[00000001] syscall_exit_close: pid = 1 { fd = 3 } ret = 0\n"
	got, err := ParseAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "close" {
		t.Errorf("got %+v", got)
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"garbage",
		"[1] syscall_exit_open pid = 1 { } ret = 0",
		"[00000001] syscall_exit_open: pid = x { } ret = 0",
		"[00000001] syscall_exit_open: pid = 1 { flags = zz } ret = 0",
		"[00000001] syscall_exit_open: pid = 1 { } ret = abc",
		`[00000001] syscall_exit_open: pid = 1 { } ret = -2 (EBOGUS)`,
		`[00000001] syscall_exit_open: pid = 1 { } ret = -2 (EACCES)`, // mismatched errno
		`[00000001] syscall_exit_open: pid = 1 { filename = "unterminated } ret = 0`,
	}
	for _, line := range bad {
		if _, err := ParseAll(strings.NewReader(line)); err == nil {
			t.Errorf("no error for %q", line)
		}
	}
}

func TestParserEOF(t *testing.T) {
	p := NewParser(strings.NewReader(""))
	if _, err := p.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestFilterPathBased(t *testing.T) {
	f, err := NewFilter(`^/mnt/test(/|$)`)
	if err != nil {
		t.Fatal(err)
	}
	keep := Event{Name: "mkdir", Path: "/mnt/test/d", PID: 1}
	drop := Event{Name: "mkdir", Path: "/var/log/d", PID: 1}
	if !f.Keep(keep) {
		t.Error("in-mount mkdir dropped")
	}
	if f.Keep(drop) {
		t.Error("out-of-mount mkdir kept")
	}
	kept, dropped := f.Stats()
	if kept != 1 || dropped != 1 {
		t.Errorf("stats = %d,%d", kept, dropped)
	}
}

func TestFilterFdTracking(t *testing.T) {
	f, _ := NewFilter(`^/mnt/test(/|$)`)
	events := []Event{
		{Name: "open", Path: "/mnt/test/a", PID: 1, Ret: 3},
		{Name: "open", Path: "/etc/passwd", PID: 1, Ret: 4},
		{Name: "write", PID: 1, Args: map[string]int64{"fd": 3, "count": 10}, Ret: 10},
		{Name: "write", PID: 1, Args: map[string]int64{"fd": 4, "count": 10}, Ret: 10},
		{Name: "close", PID: 1, Args: map[string]int64{"fd": 3}},
		{Name: "write", PID: 1, Args: map[string]int64{"fd": 3, "count": 5}, Ret: 5},
	}
	var kept []string
	for _, ev := range events {
		if f.Keep(ev) {
			kept = append(kept, ev.Name)
		}
	}
	// Kept: the in-mount open, the fd-3 write, the fd-3 close. The write to
	// fd 4 (/etc/passwd) and the post-close fd-3 write are dropped.
	want := []string{"open", "write", "close"}
	if !reflect.DeepEqual(kept, want) {
		t.Errorf("kept = %v, want %v", kept, want)
	}
}

func TestFilterFdReuseAcrossMounts(t *testing.T) {
	f, _ := NewFilter(`^/mnt/test(/|$)`)
	events := []Event{
		{Name: "open", Path: "/mnt/test/a", PID: 1, Ret: 3},
		{Name: "close", PID: 1, Args: map[string]int64{"fd": 3}},
		{Name: "open", Path: "/etc/x", PID: 1, Ret: 3}, // fd reused elsewhere
		{Name: "read", PID: 1, Args: map[string]int64{"fd": 3, "count": 1}, Ret: 1},
	}
	var keptReads int
	for _, ev := range events {
		if f.Keep(ev) && ev.Name == "read" {
			keptReads++
		}
	}
	if keptReads != 0 {
		t.Errorf("foreign fd read leaked through filter")
	}
}

func TestFilterPerPIDIsolation(t *testing.T) {
	f, _ := NewFilter(`^/mnt/test(/|$)`)
	f.Keep(Event{Name: "open", Path: "/mnt/test/a", PID: 1, Ret: 3})
	// Same fd number in a different pid is not tracked.
	if f.Keep(Event{Name: "read", PID: 2, Args: map[string]int64{"fd": 3, "count": 1}}) {
		t.Error("fd table leaked across pids")
	}
}

func TestFilterFailedOpenNotTracked(t *testing.T) {
	f, _ := NewFilter(`^/mnt/test(/|$)`)
	// A failed open is still an in-mount event (IOCov wants its output
	// coverage) but must not install an fd.
	ev := Event{Name: "open", Path: "/mnt/test/a", PID: 1, Ret: -2, Err: sys.ENOENT}
	if !f.Keep(ev) {
		t.Error("failed in-mount open dropped")
	}
	if f.Keep(Event{Name: "read", PID: 1, Args: map[string]int64{"fd": -2, "count": 1}}) {
		t.Error("negative fd tracked")
	}
}

func TestFilterApply(t *testing.T) {
	f, _ := NewFilter(`^/mnt/test(/|$)`)
	events := []Event{
		{Name: "mkdir", Path: "/mnt/test/d", PID: 1},
		{Name: "mkdir", Path: "/home/u/d", PID: 1},
		{Name: "chdir", Path: "/mnt/test/d", PID: 1},
	}
	out := f.Apply(events)
	if len(out) != 2 {
		t.Errorf("kept %d, want 2", len(out))
	}
}

func TestFilterBadPattern(t *testing.T) {
	if _, err := NewFilter(`([`); err == nil {
		t.Error("bad regexp accepted")
	}
}

func TestFilteringSink(t *testing.T) {
	f, _ := NewFilter(`^/mnt/test(/|$)`)
	col := NewCollector()
	sink := &FilteringSink{F: f, Next: col}
	sink.Emit(Event{Name: "mkdir", Path: "/mnt/test/d"})
	sink.Emit(Event{Name: "mkdir", Path: "/elsewhere"})
	if col.Len() != 1 {
		t.Errorf("collected %d, want 1", col.Len())
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	m := MultiSink{a, b}
	m.Emit(Event{Name: "open"})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Name: "open"})
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestLargeTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []Event
	for i := 0; i < 5000; i++ {
		ev := Event{
			Seq:  uint64(i + 1),
			PID:  1 + rng.Intn(4),
			Name: "write",
			Args: map[string]int64{"fd": int64(3 + rng.Intn(10)), "count": int64(rng.Intn(1 << 20))},
		}
		ev.Ret = ev.Args["count"]
		want = append(want, ev)
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}
