package vfs

import "sync"

// Data-block recycling. File data lives in per-inode maps of fixed-size
// blocks that are allocated on first write and dropped wholesale when a file
// is truncated or unlinked — exactly the lifecycle of the suites' storm
// workloads, which write hundreds of megabytes into a chunk's scratch files
// and then unlink them. Without recycling, every storm chunk re-allocates
// its whole working set from the heap, and a parallel run multiplies that
// churn by the worker count.
//
// Safety argument for sharing one pool across FS instances: a block slice
// never escapes the owning FS's mutex. ReadAt/WriteAt copy bytes in and
// out, Clone deep-copies every block, and no accessor returns a block
// slice. A block is returned to the pool only at the two points where its
// map entry is dropped (truncate shrink, releaseInode), after which nothing
// references it.
//
// Only the default 4 KiB geometry is pooled; filesystems configured with
// another block size fall back to plain allocation. Pool entries are dirty:
// newBlock zeroes them on reuse unless the caller is about to overwrite the
// whole block.

// pooledBlockSize matches DefaultConfig().BlockSize.
const pooledBlockSize = 4096

// blockPool holds retired *[pooledBlockSize]byte blocks. The array-pointer
// form keeps Put from boxing a slice header on every call.
var blockPool sync.Pool

// newBlock returns a bs-byte block. zero says the caller needs zero-filled
// contents (a partial write or an explicit preallocation); callers that
// overwrite the whole block immediately pass false and skip the clear.
func newBlock(bs int64, zero bool) []byte {
	if bs != pooledBlockSize {
		return make([]byte, bs)
	}
	if p, ok := blockPool.Get().(*[pooledBlockSize]byte); ok {
		blk := p[:]
		if zero {
			clear(blk)
		}
		return blk
	}
	return make([]byte, pooledBlockSize)
}

// freeBlock retires a block dropped from an inode's block map. Blocks of a
// non-pooled geometry are left to the garbage collector.
//
//iocov:hotpath
func freeBlock(bs int64, blk []byte) {
	if bs != pooledBlockSize || len(blk) != pooledBlockSize {
		return
	}
	blockPool.Put((*[pooledBlockSize]byte)(blk))
}
