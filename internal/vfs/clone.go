package vfs

import "iocov/internal/sys"

// Clone deep-copies the filesystem: inodes, directory structure, file data,
// and xattrs. The crash-consistency simulator uses clones as persistence
// snapshots — the clone is what survives a simulated crash.
//
// Open descriptors (which live in the kernel layer) are not part of a
// filesystem and are therefore not cloned; region trackers and corruption
// records belong to the live instance and start empty in the clone.
func (fs *FS) Clone() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := &FS{
		cfg:         fs.cfg,
		nextIno:     fs.nextIno,
		clock:       fs.clock,
		usedBlocks:  fs.usedBlocks,
		totalBlocks: fs.totalBlocks,
		quotaUsed:   make(map[uint32]int64, len(fs.quotaUsed)),
	}
	for uid, n := range fs.quotaUsed {
		out.quotaUsed[uid] = n
	}
	out.root = cloneInode(fs.root, nil)
	out.root.parent = out.root
	return out
}

func cloneInode(in *Inode, parent *Inode) *Inode {
	out := &Inode{
		ino:        in.ino,
		typ:        in.typ,
		mode:       in.mode,
		uid:        in.uid,
		gid:        in.gid,
		nlink:      in.nlink,
		size:       in.size,
		parent:     parent,
		target:     in.target,
		xattrBytes: in.xattrBytes,
		badBlock:   in.badBlock,
		generation: in.generation,
		atime:      in.atime,
		mtime:      in.mtime,
		ctime:      in.ctime,
		xattrs:     make(map[string][]byte, len(in.xattrs)),
	}
	for k, v := range in.xattrs {
		out.xattrs[k] = append([]byte(nil), v...)
	}
	if in.blocks != nil {
		out.blocks = make(map[int64][]byte, len(in.blocks))
		for bi, blk := range in.blocks {
			out.blocks[bi] = append([]byte(nil), blk...)
		}
	}
	if in.children != nil {
		out.children = make(map[string]*Inode, len(in.children))
		// Hard links: the same inode may appear under several names; a
		// naive recursive copy would split them. Track by inode pointer.
		for name, child := range in.children {
			out.children[name] = cloneInodeShared(child, out, map[*Inode]*Inode{})
		}
	}
	return out
}

// cloneInodeShared clones child trees while preserving hard-link identity
// within one directory level; cross-directory hard links are split (a
// documented simplification — the workloads under crash test do not build
// cross-directory link webs).
func cloneInodeShared(in *Inode, parent *Inode, seen map[*Inode]*Inode) *Inode {
	if dup, ok := seen[in]; ok {
		return dup
	}
	out := cloneInode(in, parent)
	seen[in] = out
	return out
}

// WalkStats collects a deterministic inventory of the tree for comparing a
// crash image against expectations: path -> Stat, in sorted order.
func (fs *FS) WalkStats() map[string]Stat {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[string]Stat)
	fs.walkStats("", fs.root, out)
	return out
}

func (fs *FS) walkStats(prefix string, dir *Inode, out map[string]Stat) {
	for name, child := range dir.children {
		path := prefix + "/" + name
		out[path] = fs.statLocked(child)
		if child.typ == TypeDir {
			fs.walkStats(path, child, out)
		}
	}
}

// ReadFileAt is a lock-consistent convenience for checkers: it reads the
// file at path (absolute) without permission checks.
func (fs *FS) ReadFileAt(path string, off int64, n int) ([]byte, sys.Errno) {
	ino, e := fs.LookupInode(fs.Root(), Root, path, true)
	if e != sys.OK {
		return nil, e
	}
	buf := make([]byte, n)
	got, e := fs.ReadAt(Root, ino, buf, off)
	if e != sys.OK {
		return nil, e
	}
	return buf[:got], sys.OK
}
