package vfs

import (
	"testing"

	"iocov/internal/sys"
)

func TestFallocateGrows(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	if e := fs.Fallocate(Root, ino, 0, 0, 16384); e != sys.OK {
		t.Fatalf("fallocate: %v", e)
	}
	if ino.Size() != 16384 {
		t.Errorf("size = %d, want 16384", ino.Size())
	}
	// The range is really allocated (charged), unlike a sparse truncate.
	if st := fs.statLockedForTest(ino); st.Blocks != 4 {
		t.Errorf("blocks = %d, want 4", st.Blocks)
	}
	// Allocated-but-unwritten space reads as zeros.
	buf := make([]byte, 8)
	n, e := fs.ReadAt(Root, ino, buf, 100)
	if e != sys.OK || n != 8 {
		t.Fatalf("read = %d,%v", n, e)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fallocated space not zeroed")
		}
	}
}

func TestFallocateKeepSize(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	if _, e := fs.WriteAt(Root, ino, []byte("abc"), 0, false); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.Fallocate(Root, ino, FallocKeepSize, 0, 1<<20); e != sys.OK {
		t.Fatalf("keep-size fallocate: %v", e)
	}
	if ino.Size() != 3 {
		t.Errorf("size = %d, want 3 (KEEP_SIZE)", ino.Size())
	}
	// But the blocks are charged.
	if got := fs.statLockedForTest(ino).Blocks; got != 256 {
		t.Errorf("blocks = %d, want 256", got)
	}
}

func TestFallocateErrors(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	if e := fs.Fallocate(Root, ino, 0, -1, 10); e != sys.EINVAL {
		t.Errorf("negative offset = %v", e)
	}
	if e := fs.Fallocate(Root, ino, 0, 0, 0); e != sys.EINVAL {
		t.Errorf("zero length = %v", e)
	}
	if e := fs.Fallocate(Root, ino, 0x99, 0, 10); e != sys.ENOTSUP {
		t.Errorf("unknown mode = %v", e)
	}
	if e := fs.Fallocate(Root, ino, 0, 0, 64<<40); e != sys.EFBIG {
		t.Errorf("past max size = %v", e)
	}
	cfg := DefaultConfig()
	cfg.CapacityBytes = 64 * 1024
	small := New(cfg)
	ino2 := mustCreateOn(t, small, "/f")
	if e := small.Fallocate(Root, ino2, 0, 0, 1<<20); e != sys.ENOSPC {
		t.Errorf("over capacity = %v", e)
	}
	small.SetReadOnly(true)
	if e := small.Fallocate(Root, ino2, 0, 0, 10); e != sys.EROFS {
		t.Errorf("read-only = %v", e)
	}
}

func mustCreateOn(t *testing.T, fs *FS, path string) *Inode {
	t.Helper()
	res, e := fs.OpenInode(fs.Root(), Root, path, sys.O_CREAT|sys.O_RDWR, 0o644)
	if e != sys.OK {
		t.Fatalf("create %s: %v", path, e)
	}
	return res.Ino
}

// statLockedForTest exposes the stat snapshot for block assertions.
func (fs *FS) statLockedForTest(ino *Inode) Stat {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.statLocked(ino)
}
