package vfs

import (
	"fmt"

	"iocov/internal/sys"
)

// largeFileLimit is the 2 GiB boundary guarded by O_LARGEFILE on Linux
// opens that do not request large-file support.
const largeFileLimit = int64(1) << 31

// OpenResult reports what OpenInode resolved.
type OpenResult struct {
	Ino     *Inode
	Created bool
}

// OpenInode implements the filesystem half of open(2): path resolution with
// O_CREAT/O_EXCL/O_NOFOLLOW/O_DIRECTORY semantics, permission checks for the
// requested access mode, O_TRUNC, and the O_LARGEFILE overflow check. The
// caller (internal/kernel) owns fd allocation and flag validation.
func (fs *FS) OpenInode(base *Inode, cred Cred, path string, flags int, mode uint32) (OpenResult, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hitRegion("do_sys_open")

	accmode := flags & sys.O_ACCMODE
	wantWrite := accmode == sys.O_WRONLY || accmode == sys.O_RDWR
	opt := resolveOpts{followLast: flags&sys.O_NOFOLLOW == 0}

	var ino *Inode
	created := false
	if flags&sys.O_CREAT != 0 {
		res, e := fs.resolve(base, cred, path, resolveOpts{wantParent: true, followLast: opt.followLast})
		if e != sys.OK {
			return OpenResult{}, e
		}
		if res.ino == nil && res.dir == nil {
			// Resolved through a trailing symlink to an existing target.
			return OpenResult{}, sys.ENOENT
		}
		if res.ino != nil {
			if flags&sys.O_EXCL != 0 {
				return OpenResult{}, sys.EEXIST
			}
			ino = res.ino
			if ino.typ == TypeSymlink {
				if flags&sys.O_NOFOLLOW != 0 {
					return OpenResult{}, sys.ELOOP
				}
				sub, e := fs.resolve(res.dir, cred, ino.target, resolveOpts{followLast: true})
				if e != sys.OK {
					return OpenResult{}, e
				}
				ino = sub.ino
			}
		} else {
			if fs.cfg.ReadOnly {
				return OpenResult{}, sys.EROFS
			}
			if e := checkAccess(res.dir, cred, permWrite|permExec); e != sys.OK {
				return OpenResult{}, e
			}
			if e := fs.chargeBlocks(cred, 1); e != sys.OK {
				// One block for the new inode's metadata footprint.
				return OpenResult{}, e
			}
			ino = fs.newInode(TypeFile, mode, cred)
			ino.parent = res.dir
			res.dir.children[res.name] = ino
			fs.stampData(res.dir)
			created = true
		}
	} else {
		res, e := fs.resolve(base, cred, path, opt)
		if e != sys.OK {
			return OpenResult{}, e
		}
		ino = res.ino
		if ino.typ == TypeSymlink {
			// Only reachable with O_NOFOLLOW and no O_PATH.
			if flags&sys.O_PATH == 0 {
				return OpenResult{}, sys.ELOOP
			}
		}
	}

	if flags&sys.O_DIRECTORY != 0 && ino.typ != TypeDir {
		return OpenResult{}, sys.ENOTDIR
	}
	if ino.typ == TypeDir && wantWrite {
		return OpenResult{}, sys.EISDIR
	}
	if flags&sys.O_PATH == 0 {
		var want uint32
		switch accmode {
		case sys.O_RDONLY:
			want = permRead
		case sys.O_WRONLY:
			want = permWrite
		case sys.O_RDWR:
			want = permRead | permWrite
		}
		if !created {
			if e := checkAccess(ino, cred, want); e != sys.OK {
				return OpenResult{}, e
			}
		}
		if wantWrite && fs.cfg.ReadOnly {
			return OpenResult{}, sys.EROFS
		}
	}

	// generic_file_open: without O_LARGEFILE, files at or beyond 2 GiB must
	// be refused with EOVERFLOW. The injected LargefileOpen bug omits the
	// check (modelled on torvalds/linux f3bf67c6c6fe).
	fs.hitRegion("generic_file_open")
	fs.hitRegion("generic_file_open:guard")
	if ino.typ == TypeFile && flags&sys.O_LARGEFILE == 0 && ino.size >= largeFileLimit {
		fs.hitRegion("generic_file_open:overflow-branch")
		if fs.cfg.Bugs.LargefileOpen {
			fs.recordCorruption(fmt.Sprintf("largefile: inode %d size %d opened without O_LARGEFILE", ino.ino, ino.size))
		} else {
			return OpenResult{}, sys.EOVERFLOW
		}
	}

	if flags&sys.O_TRUNC != 0 && ino.typ == TypeFile && wantWrite && flags&sys.O_PATH == 0 {
		if e := fs.truncateLocked(cred, ino, 0); e != sys.OK {
			return OpenResult{}, e
		}
	}
	return OpenResult{Ino: ino, Created: created}, sys.OK
}

// ReadAt reads up to len(buf) bytes from ino starting at off. It returns the
// number of bytes read; reading at or past EOF returns 0, sys.OK. Holes in
// sparse files read as zeros.
func (fs *FS) ReadAt(cred Cred, ino *Inode, buf []byte, off int64) (int, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hitRegion("vfs_read")
	if ino.typ == TypeDir {
		return 0, sys.EISDIR
	}
	if off < 0 {
		return 0, sys.EINVAL
	}
	// ext4_get_branch: a bad block must surface as EIO. The injected
	// GetBranchErrno bug returns success with no data instead (modelled on
	// torvalds/linux 26d75a16af28).
	fs.hitRegion("ext4_get_branch")
	if ino.badBlock {
		fs.hitRegion("ext4_get_branch:badblock-branch")
		if fs.cfg.Bugs.GetBranchErrno {
			fs.recordCorruption(fmt.Sprintf("get_branch: inode %d bad block read returned 0 instead of EIO", ino.ino))
			return 0, sys.OK
		}
		return 0, sys.EIO
	}
	if off >= ino.size {
		return 0, sys.OK
	}
	n := int64(len(buf))
	if off+n > ino.size {
		n = ino.size - off
	}
	bs := fs.cfg.BlockSize
	var copied int64
	for copied < n {
		pos := off + copied
		bi, bo := pos/bs, pos%bs
		chunk := bs - bo
		if rest := n - copied; chunk > rest {
			chunk = rest
		}
		dst := buf[copied : copied+chunk]
		if blk, ok := ino.blocks[bi]; ok {
			copy(dst, blk[bo:bo+chunk])
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		copied += chunk
	}
	return int(n), sys.OK
}

// WriteAt writes buf to ino at off, allocating blocks lazily and charging
// only newly allocated ones (holes stay free, as on a real filesystem).
// nonblock models an RWF_NOWAIT-style write for the injected
// NowaitWriteENOSPC bug.
func (fs *FS) WriteAt(cred Cred, ino *Inode, buf []byte, off int64, nonblock bool) (int, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hitRegion("vfs_write")
	if ino.typ == TypeDir {
		return 0, sys.EISDIR
	}
	if off < 0 {
		return 0, sys.EINVAL
	}
	if fs.cfg.ReadOnly {
		return 0, sys.EROFS
	}
	if len(buf) == 0 {
		return 0, sys.OK
	}
	end := off + int64(len(buf))
	if end < 0 || end > fs.cfg.MaxFileSize {
		return 0, sys.EFBIG
	}
	bs := fs.cfg.BlockSize
	firstBlk, lastBlk := off/bs, (end-1)/bs
	var newBlocks int64
	for bi := firstBlk; bi <= lastBlk; bi++ {
		if _, ok := ino.blocks[bi]; !ok {
			newBlocks++
		}
	}
	if newBlocks > 0 {
		// btrfs_buffered_write NOWAIT path: needing allocation under
		// NOWAIT must fall back, not fail. The injected bug returns
		// ENOSPC (modelled on torvalds/linux a348c8d4f6cf).
		fs.hitRegion("btrfs_buffered_write")
		if nonblock {
			fs.hitRegion("btrfs_buffered_write:nowait-branch")
			if fs.cfg.Bugs.NowaitWriteENOSPC {
				return 0, sys.ENOSPC
			}
		}
		if e := fs.chargeBlocks(cred, newBlocks); e != sys.OK {
			return 0, e
		}
	}
	if ino.blocks == nil {
		ino.blocks = make(map[int64][]byte)
	}
	var copied int64
	for copied < int64(len(buf)) {
		pos := off + copied
		bi, bo := pos/bs, pos%bs
		chunk := bs - bo
		if rest := int64(len(buf)) - copied; chunk > rest {
			chunk = rest
		}
		blk, ok := ino.blocks[bi]
		if !ok {
			// A write covering the whole block overwrites every byte below,
			// so a recycled block only needs zeroing for partial coverage.
			blk = newBlock(bs, bo != 0 || chunk != bs)
			ino.blocks[bi] = blk
		}
		copy(blk[bo:bo+chunk], buf[copied:copied+chunk])
		copied += chunk
	}
	if end > ino.size {
		ino.size = end
	}
	fs.stampData(ino)
	return len(buf), sys.OK
}

// Truncate resolves path and sets the file's size to length.
func (fs *FS) Truncate(base *Inode, cred Cred, path string, length int64) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return e
	}
	ino := res.ino
	if ino.typ == TypeDir {
		return sys.EISDIR
	}
	if ino.typ != TypeFile {
		return sys.EINVAL
	}
	if e := checkAccess(ino, cred, permWrite); e != sys.OK {
		return e
	}
	return fs.truncateLocked(cred, ino, length)
}

// TruncateInode is ftruncate's filesystem half; the kernel layer has already
// validated the descriptor's access mode.
func (fs *FS) TruncateInode(cred Cred, ino *Inode, length int64) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if ino.typ == TypeDir {
		return sys.EISDIR
	}
	if ino.typ != TypeFile {
		return sys.EINVAL
	}
	return fs.truncateLocked(cred, ino, length)
}

func (fs *FS) truncateLocked(cred Cred, ino *Inode, length int64) sys.Errno {
	fs.hitRegion("ext4_truncate")
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	if length < 0 {
		return sys.EINVAL
	}
	if length > fs.cfg.MaxFileSize {
		return sys.EFBIG
	}
	target := length
	// ext4 resize class: expansion that lands exactly on a block boundary
	// must still reach the target size; the injected bug stops one block
	// short (modelled on torvalds/linux df3cb754d13d).
	if length > ino.size && length%fs.cfg.BlockSize == 0 && length >= fs.cfg.BlockSize {
		fs.hitRegion("ext4_truncate:aligned-branch")
		if fs.cfg.Bugs.TruncateExpandError {
			target = length - fs.cfg.BlockSize
			fs.recordCorruption(fmt.Sprintf("truncate-expand: inode %d asked %d got %d", ino.ino, length, target))
		}
	}
	if target < ino.size {
		// Shrink: free whole blocks beyond the new end and zero the tail
		// of the boundary block so later growth reads zeros.
		bs := fs.cfg.BlockSize
		lastKeep := int64(-1)
		if target > 0 {
			lastKeep = (target - 1) / bs
		}
		var freed int64
		for bi, blk := range ino.blocks {
			if bi > lastKeep {
				delete(ino.blocks, bi)
				freeBlock(bs, blk)
				freed++
			}
		}
		if freed > 0 {
			_ = fs.chargeBlocks(cred, -freed)
		}
		if target%bs != 0 {
			if blk, ok := ino.blocks[lastKeep]; ok {
				tail := blk[target%bs:]
				for i := range tail {
					tail[i] = 0
				}
			}
		}
	}
	// Growth is sparse: size changes, no blocks are allocated (holes read
	// as zeros and are charged only when written).
	ino.size = target
	fs.stampData(ino)
	return sys.OK
}

// FallocKeepSize is fallocate(2)'s FALLOC_FL_KEEP_SIZE mode bit.
const FallocKeepSize = 0x1

// Fallocate preallocates blocks for [off, off+length) on ino, charging
// them like writes. Without FallocKeepSize the file grows to cover the
// range; with it the size is left alone (posix_fallocate-style
// preallocation past EOF).
func (fs *FS) Fallocate(cred Cred, ino *Inode, mode int, off, length int64) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hitRegion("ext4_fallocate")
	if ino.typ != TypeFile {
		return sys.ENODEV
	}
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	if off < 0 || length <= 0 {
		return sys.EINVAL
	}
	if mode&^FallocKeepSize != 0 {
		return sys.ENOTSUP
	}
	end := off + length
	if end < 0 || end > fs.cfg.MaxFileSize {
		return sys.EFBIG
	}
	bs := fs.cfg.BlockSize
	firstBlk, lastBlk := off/bs, (end-1)/bs
	var newBlocks int64
	for bi := firstBlk; bi <= lastBlk; bi++ {
		if _, ok := ino.blocks[bi]; !ok {
			newBlocks++
		}
	}
	if newBlocks > 0 {
		if e := fs.chargeBlocks(cred, newBlocks); e != sys.OK {
			return e
		}
		if ino.blocks == nil {
			ino.blocks = make(map[int64][]byte)
		}
		for bi := firstBlk; bi <= lastBlk; bi++ {
			if _, ok := ino.blocks[bi]; !ok {
				ino.blocks[bi] = newBlock(bs, true)
			}
		}
	}
	if mode&FallocKeepSize == 0 && end > ino.size {
		ino.size = end
	}
	fs.stampData(ino)
	return sys.OK
}

// MarkBadBlock flags the file at path as having a medium error so reads hit
// the ext4_get_branch path. Used by fault-injection workloads and tests.
func (fs *FS) MarkBadBlock(base *Inode, cred Cred, path string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return e
	}
	res.ino.badBlock = true
	return sys.OK
}
