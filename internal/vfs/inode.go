package vfs

import (
	"iocov/internal/sys"
)

// Inode is a filesystem object: regular file, directory, or symlink. Fields
// are guarded by the owning FS's mutex; callers outside the package interact
// with inodes only through FS and kernel methods plus the read-only
// accessors below.
type Inode struct {
	ino   uint64
	typ   NodeType
	mode  uint32 // permission bits incl. setuid/setgid/sticky
	uid   uint32
	gid   uint32
	nlink int

	size int64
	// blocks holds file data as lazily allocated BlockSize chunks keyed by
	// block index; unallocated blocks read as zeros (sparse files).
	blocks map[int64][]byte

	children map[string]*Inode
	parent   *Inode

	target string // symlink target

	xattrs     map[string][]byte
	xattrBytes int // total name+value bytes stored, vs. XattrCapacity

	// badBlock marks a simulated medium error used by the GetBranchErrno
	// injected bug.
	badBlock bool

	// generation increments on every mutation; the differential tester
	// uses it to detect unexpected state changes.
	generation uint64

	// atime/mtime/ctime are logical timestamps (ticks of the filesystem's
	// monotonic clock): access, data modification, and metadata change.
	atime uint64
	mtime uint64
	ctime uint64
}

func (fs *FS) newInode(typ NodeType, mode uint32, cred Cred) *Inode {
	ino := &Inode{
		ino:    fs.nextIno,
		typ:    typ,
		mode:   mode & sys.PermMask,
		uid:    cred.UID,
		gid:    cred.GID,
		nlink:  1,
		xattrs: make(map[string][]byte),
	}
	fs.nextIno++
	now := fs.tick()
	ino.atime, ino.mtime, ino.ctime = now, now, now
	if typ == TypeDir {
		ino.children = make(map[string]*Inode)
		ino.nlink = 2
	}
	return ino
}

// Ino returns the inode number.
func (i *Inode) Ino() uint64 { return i.ino }

// Type returns the inode type.
func (i *Inode) Type() NodeType { return i.typ }

// Mode returns the permission bits.
func (i *Inode) Mode() uint32 { return i.mode }

// Size returns the file size in bytes (0 for non-files).
func (i *Inode) Size() int64 { return i.size }

// Nlink returns the link count.
func (i *Inode) Nlink() int { return i.nlink }

// Owner returns the owning uid/gid.
func (i *Inode) Owner() (uid, gid uint32) { return i.uid, i.gid }

// Generation returns the inode's mutation counter.
func (i *Inode) Generation() uint64 { return i.generation }

// Times returns the logical access, modification, and change timestamps.
func (i *Inode) Times() (atime, mtime, ctime uint64) {
	return i.atime, i.mtime, i.ctime
}

func (i *Inode) touch() { i.generation++ }

// access permission bits for checkAccess.
const (
	permRead  = 4
	permWrite = 2
	permExec  = 1
)

// checkAccess implements the standard owner/group/other permission check.
// UID 0 passes read/write unconditionally and exec if any exec bit is set.
func checkAccess(ino *Inode, cred Cred, want uint32) sys.Errno {
	if cred.UID == 0 {
		if want&permExec != 0 && ino.typ == TypeFile && ino.mode&0o111 == 0 {
			return sys.EACCES
		}
		return sys.OK
	}
	var shift uint
	switch {
	case cred.UID == ino.uid:
		shift = 6
	case cred.GID == ino.gid:
		shift = 3
	default:
		shift = 0
	}
	granted := (ino.mode >> shift) & 7
	if granted&want != want {
		return sys.EACCES
	}
	return sys.OK
}

// Stat is the metadata snapshot returned by FS.Stat and kernel stat calls.
type Stat struct {
	Ino   uint64
	Type  NodeType
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  int64
	Nlink int
	// Blocks is the allocation footprint in filesystem blocks.
	Blocks int64
	// Atime/Mtime/Ctime are logical timestamps (filesystem clock ticks):
	// last access, last data modification, last metadata change.
	Atime uint64
	Mtime uint64
	Ctime uint64
}

func (fs *FS) statLocked(ino *Inode) Stat {
	return Stat{
		Ino:    ino.ino,
		Type:   ino.typ,
		Mode:   ino.mode,
		UID:    ino.uid,
		GID:    ino.gid,
		Size:   ino.size,
		Nlink:  ino.nlink,
		Blocks: int64(len(ino.blocks)),
		Atime:  ino.atime,
		Mtime:  ino.mtime,
		Ctime:  ino.ctime,
	}
}
