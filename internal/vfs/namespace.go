package vfs

import (
	"sort"

	"iocov/internal/sys"
)

// Mkdir creates a directory at path with the given permission bits.
func (fs *FS) Mkdir(base *Inode, cred Cred, path string, mode uint32) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hitRegion("vfs_mkdir")
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	res, e := fs.resolve(base, cred, path, resolveOpts{wantParent: true})
	if e != sys.OK {
		return e
	}
	if res.ino != nil {
		return sys.EEXIST
	}
	if e := checkAccess(res.dir, cred, permWrite|permExec); e != sys.OK {
		return e
	}
	if e := fs.chargeBlocks(cred, 1); e != sys.OK {
		return e
	}
	child := fs.newInode(TypeDir, mode, cred)
	child.parent = res.dir
	res.dir.children[res.name] = child
	res.dir.nlink++
	fs.stampData(res.dir)
	return sys.OK
}

// Symlink creates a symbolic link at linkpath pointing to target.
func (fs *FS) Symlink(base *Inode, cred Cred, target, linkpath string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	if target == "" {
		return sys.ENOENT
	}
	if len(target) > fs.cfg.MaxPathLen {
		return sys.ENAMETOOLONG
	}
	res, e := fs.resolve(base, cred, linkpath, resolveOpts{wantParent: true})
	if e != sys.OK {
		return e
	}
	if res.ino != nil {
		return sys.EEXIST
	}
	if e := checkAccess(res.dir, cred, permWrite|permExec); e != sys.OK {
		return e
	}
	if e := fs.chargeBlocks(cred, 1); e != sys.OK {
		return e
	}
	link := fs.newInode(TypeSymlink, 0o777, cred)
	link.target = target
	link.parent = res.dir
	res.dir.children[res.name] = link
	fs.stampData(res.dir)
	return sys.OK
}

// Link creates a hard link newpath referring to the file at oldpath.
func (fs *FS) Link(base *Inode, cred Cred, oldpath, newpath string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	oldRes, e := fs.resolve(base, cred, oldpath, resolveOpts{})
	if e != sys.OK {
		return e
	}
	if oldRes.ino.typ == TypeDir {
		return sys.EPERM
	}
	newRes, e := fs.resolve(base, cred, newpath, resolveOpts{wantParent: true})
	if e != sys.OK {
		return e
	}
	if newRes.ino != nil {
		return sys.EEXIST
	}
	if e := checkAccess(newRes.dir, cred, permWrite|permExec); e != sys.OK {
		return e
	}
	oldRes.ino.nlink++
	fs.stampMeta(oldRes.ino) // link count change is a metadata change
	newRes.dir.children[newRes.name] = oldRes.ino
	fs.stampData(newRes.dir)
	return sys.OK
}

// Unlink removes the directory entry at path.
func (fs *FS) Unlink(base *Inode, cred Cred, path string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	res, e := fs.resolve(base, cred, path, resolveOpts{wantParent: true})
	if e != sys.OK {
		return e
	}
	if res.ino == nil {
		return sys.ENOENT
	}
	if res.ino.typ == TypeDir {
		return sys.EISDIR
	}
	if e := checkAccess(res.dir, cred, permWrite|permExec); e != sys.OK {
		return e
	}
	delete(res.dir.children, res.name)
	fs.stampData(res.dir)
	res.ino.nlink--
	if res.ino.nlink <= 0 {
		fs.releaseInode(cred, res.ino)
	}
	return sys.OK
}

// Rmdir removes the empty directory at path.
func (fs *FS) Rmdir(base *Inode, cred Cred, path string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	res, e := fs.resolve(base, cred, path, resolveOpts{wantParent: true})
	if e != sys.OK {
		return e
	}
	if res.ino == nil {
		return sys.ENOENT
	}
	if res.ino.typ != TypeDir {
		return sys.ENOTDIR
	}
	if len(res.ino.children) > 0 {
		return sys.EBUSY // directory not empty is ENOTEMPTY; modelled as busy resource
	}
	if res.ino == fs.root {
		return sys.EBUSY
	}
	if e := checkAccess(res.dir, cred, permWrite|permExec); e != sys.OK {
		return e
	}
	delete(res.dir.children, res.name)
	res.dir.nlink--
	fs.stampData(res.dir)
	_ = fs.chargeBlocks(cred, -1)
	return sys.OK
}

// Rename atomically moves oldpath to newpath, replacing a compatible target.
func (fs *FS) Rename(base *Inode, cred Cred, oldpath, newpath string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	oldRes, e := fs.resolve(base, cred, oldpath, resolveOpts{wantParent: true})
	if e != sys.OK {
		return e
	}
	if oldRes.ino == nil {
		return sys.ENOENT
	}
	newRes, e := fs.resolve(base, cred, newpath, resolveOpts{wantParent: true})
	if e != sys.OK {
		return e
	}
	if e := checkAccess(oldRes.dir, cred, permWrite|permExec); e != sys.OK {
		return e
	}
	if e := checkAccess(newRes.dir, cred, permWrite|permExec); e != sys.OK {
		return e
	}
	if newRes.ino != nil {
		if newRes.ino == oldRes.ino {
			return sys.OK
		}
		if newRes.ino.typ == TypeDir && oldRes.ino.typ != TypeDir {
			return sys.EISDIR
		}
		if newRes.ino.typ != TypeDir && oldRes.ino.typ == TypeDir {
			return sys.ENOTDIR
		}
		if newRes.ino.typ == TypeDir && len(newRes.ino.children) > 0 {
			return sys.EBUSY
		}
	}
	// Refuse to move a directory into its own subtree.
	if oldRes.ino.typ == TypeDir {
		for d := newRes.dir; ; d = d.parent {
			if d == oldRes.ino {
				return sys.EINVAL
			}
			if d == fs.root {
				break
			}
		}
	}
	delete(oldRes.dir.children, oldRes.name)
	if oldRes.ino.typ == TypeDir {
		oldRes.dir.nlink--
		newRes.dir.nlink++
		oldRes.ino.parent = newRes.dir
	}
	if newRes.ino != nil {
		newRes.ino.nlink--
		if newRes.ino.nlink <= 0 {
			fs.releaseInode(cred, newRes.ino)
		}
	}
	newRes.dir.children[newRes.name] = oldRes.ino
	fs.stampData(oldRes.dir)
	fs.stampData(newRes.dir)
	return sys.OK
}

// Chmod changes the permission bits of the object at path. Only the owner or
// root may change a mode (EPERM otherwise).
func (fs *FS) Chmod(base *Inode, cred Cred, path string, mode uint32) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return e
	}
	return fs.chmodLocked(cred, res.ino, mode)
}

// ChmodInode is fchmod's filesystem half.
func (fs *FS) ChmodInode(cred Cred, ino *Inode, mode uint32) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.chmodLocked(cred, ino, mode)
}

func (fs *FS) chmodLocked(cred Cred, ino *Inode, mode uint32) sys.Errno {
	fs.hitRegion("chmod_common")
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	if cred.UID != 0 && cred.UID != ino.uid {
		return sys.EPERM
	}
	ino.mode = mode & sys.PermMask
	fs.stampMeta(ino)
	return sys.OK
}

// ReadDir lists the names in the directory at path, sorted.
func (fs *FS) ReadDir(base *Inode, cred Cred, path string) ([]string, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return nil, e
	}
	if res.ino.typ != TypeDir {
		return nil, sys.ENOTDIR
	}
	if e := checkAccess(res.ino, cred, permRead); e != sys.OK {
		return nil, e
	}
	names := make([]string, 0, len(res.ino.children))
	for name := range res.ino.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, sys.OK
}

// releaseInode returns an unlinked inode's allocated blocks (plus its
// metadata block) to the allocator, recycling the block storage itself.
func (fs *FS) releaseInode(cred Cred, ino *Inode) {
	_ = fs.chargeBlocks(cred, -(int64(len(ino.blocks)) + 1))
	for _, blk := range ino.blocks {
		freeBlock(fs.cfg.BlockSize, blk)
	}
	ino.blocks = nil
	ino.size = 0
}
