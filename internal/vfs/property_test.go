package vfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"iocov/internal/sys"
)

// TestReadWriteOracle drives random positional writes/reads/truncates
// against the filesystem and a plain in-memory byte-slice oracle, checking
// every read byte-for-byte. This pins down the sparse block storage.
func TestReadWriteOracle(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := New(DefaultConfig())
		ino := mustCreate(t, fs, "/f")
		oracle := make([]byte, 0)

		grow := func(end int64) {
			if end > int64(len(oracle)) {
				oracle = append(oracle, make([]byte, end-int64(len(oracle)))...)
			}
		}
		const maxOff = 1 << 20
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0, 1: // write
				off := rng.Int63n(maxOff)
				size := rng.Intn(16 * 1024)
				data := make([]byte, size)
				rng.Read(data)
				n, e := fs.WriteAt(Root, ino, data, off, false)
				if e != sys.OK {
					t.Fatalf("seed %d op %d: write(%d,%d) = %v", seed, op, off, size, e)
				}
				if n != size {
					t.Fatalf("short write %d of %d", n, size)
				}
				grow(off + int64(size))
				copy(oracle[off:], data)
			case 2: // read
				off := rng.Int63n(maxOff)
				size := rng.Intn(16 * 1024)
				buf := make([]byte, size)
				n, e := fs.ReadAt(Root, ino, buf, off)
				if e != sys.OK {
					t.Fatalf("read = %v", e)
				}
				want := 0
				if off < int64(len(oracle)) {
					want = len(oracle) - int(off)
					if want > size {
						want = size
					}
				}
				if n != want {
					t.Fatalf("seed %d op %d: read(%d,%d) = %d bytes, oracle %d (size %d)",
						seed, op, off, size, n, want, len(oracle))
				}
				if n > 0 && !bytes.Equal(buf[:n], oracle[off:off+int64(n)]) {
					t.Fatalf("seed %d op %d: read content mismatch at %d", seed, op, off)
				}
			case 3: // truncate
				length := rng.Int63n(maxOff)
				if e := fs.TruncateInode(Root, ino, length); e != sys.OK {
					t.Fatalf("truncate = %v", e)
				}
				if length <= int64(len(oracle)) {
					oracle = oracle[:length]
				} else {
					grow(length)
				}
			}
			if ino.Size() != int64(len(oracle)) {
				t.Fatalf("seed %d op %d: size %d, oracle %d", seed, op, ino.Size(), len(oracle))
			}
		}
	}
}

// TestBlockAccountingInvariant: after any op sequence, the filesystem's
// used-block counter equals the sum of per-inode allocations plus metadata
// blocks, and returns to the baseline when everything is deleted.
func TestBlockAccountingInvariant(t *testing.T) {
	fs := New(DefaultConfig())
	base := fs.UsedBlocks()
	rng := rand.New(rand.NewSource(42))
	var files []string
	for i := 0; i < 50; i++ {
		switch {
		case rng.Intn(3) > 0 || len(files) == 0:
			name := fmt.Sprintf("/f%03d", i)
			res, e := fs.OpenInode(fs.Root(), Root, name, sys.O_CREAT|sys.O_RDWR, 0o644)
			if e != sys.OK {
				t.Fatal(e)
			}
			if _, e := fs.WriteAt(Root, res.Ino, make([]byte, rng.Intn(64*1024)), int64(rng.Intn(1<<20)), false); e != sys.OK {
				t.Fatal(e)
			}
			files = append(files, name)
		default:
			idx := rng.Intn(len(files))
			if e := fs.Unlink(fs.Root(), Root, files[idx]); e != sys.OK {
				t.Fatal(e)
			}
			files = append(files[:idx], files[idx+1:]...)
		}
		if fs.UsedBlocks() < base {
			t.Fatalf("used blocks %d below baseline %d", fs.UsedBlocks(), base)
		}
	}
	for _, f := range files {
		if e := fs.Unlink(fs.Root(), Root, f); e != sys.OK {
			t.Fatal(e)
		}
	}
	if got := fs.UsedBlocks(); got != base {
		t.Errorf("blocks after deleting everything = %d, want %d (leak)", got, base)
	}
}

// TestSparseFilesChargeOnlyWrittenBlocks: a huge sparse file costs only
// what was written.
func TestSparseFilesChargeOnlyWrittenBlocks(t *testing.T) {
	fs := New(DefaultConfig())
	ino := mustCreate(t, fs, "/sparse")
	before := fs.UsedBlocks()
	// 512 MiB sparse size via truncate: no charge.
	if e := fs.TruncateInode(Root, ino, 512<<20); e != sys.OK {
		t.Fatal(e)
	}
	if got := fs.UsedBlocks(); got != before {
		t.Errorf("truncate charged %d blocks", got-before)
	}
	// One byte at the far end: one block.
	if _, e := fs.WriteAt(Root, ino, []byte{1}, 512<<20-1, false); e != sys.OK {
		t.Fatal(e)
	}
	if got := fs.UsedBlocks() - before; got != 1 {
		t.Errorf("far write charged %d blocks, want 1", got)
	}
	// The hole reads as zeros.
	buf := make([]byte, 4)
	n, e := fs.ReadAt(Root, ino, buf, 1<<20)
	if e != sys.OK || n != 4 || !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Errorf("hole read = %d,%v,%v", n, e, buf)
	}
}

// TestTruncateZeroesTailWithinBlock: shrink then re-grow must not resurrect
// old data (the classic stale-tail bug).
func TestTruncateZeroesTailWithinBlock(t *testing.T) {
	fs := New(DefaultConfig())
	ino := mustCreate(t, fs, "/f")
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if _, e := fs.WriteAt(Root, ino, data, 0, false); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.TruncateInode(Root, ino, 100); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.TruncateInode(Root, ino, 4096); e != sys.OK {
		t.Fatal(e)
	}
	buf := make([]byte, 4096)
	if _, e := fs.ReadAt(Root, ino, buf, 0); e != sys.OK {
		t.Fatal(e)
	}
	for i := 100; i < 4096; i++ {
		if buf[i] != 0 {
			t.Fatalf("stale byte %#x at %d after shrink+grow", buf[i], i)
		}
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0xAB {
			t.Fatalf("lost byte at %d", i)
		}
	}
}

// TestPathResolutionProperties: quick-checked invariants of resolution.
func TestPathResolutionProperties(t *testing.T) {
	fs := New(DefaultConfig())
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	mustCreate(t, fs, "/a/b/f")

	// Redundant slashes and dots never change the result.
	variants := []string{
		"/a/b/f", "//a/b/f", "/a//b/f", "/a/./b/f", "/a/b/./f",
		"/a/b/../b/f", "/./a/b/f", "/a/b//f",
	}
	want, e := fs.Lookup(fs.Root(), Root, "/a/b/f")
	if e != sys.OK {
		t.Fatal(e)
	}
	for _, v := range variants {
		got, e := fs.Lookup(fs.Root(), Root, v)
		if e != sys.OK || got.Ino != want.Ino {
			t.Errorf("lookup(%q) = %+v, %v; want ino %d", v, got, e, want.Ino)
		}
	}
}

// TestRenamePreservesContent: rename is a pure namespace operation.
func TestRenamePreservesContent(t *testing.T) {
	f := func(data []byte) bool {
		fs := New(DefaultConfig())
		res, e := fs.OpenInode(fs.Root(), Root, "/src", sys.O_CREAT|sys.O_RDWR, 0o644)
		if e != sys.OK {
			return false
		}
		if len(data) > 0 {
			if _, e := fs.WriteAt(Root, res.Ino, data, 0, false); e != sys.OK {
				return false
			}
		}
		if e := fs.Rename(fs.Root(), Root, "/src", "/dst"); e != sys.OK {
			return false
		}
		got, e := fs.LookupInode(fs.Root(), Root, "/dst", true)
		if e != sys.OK || got.Size() != int64(len(data)) {
			return false
		}
		buf := make([]byte, len(data))
		n, e := fs.ReadAt(Root, got, buf, 0)
		return e == sys.OK && n == len(data) && bytes.Equal(buf, data)
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestModeNeverExceedsPermMask: chmod can only set permission bits.
func TestModeNeverExceedsPermMask(t *testing.T) {
	f := func(mode uint32) bool {
		fs := New(DefaultConfig())
		ino := mustCreateQ(fs)
		if ino == nil {
			return false
		}
		if e := fs.ChmodInode(Root, ino, mode); e != sys.OK {
			return false
		}
		return ino.Mode()&^uint32(sys.PermMask) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mustCreateQ(fs *FS) *Inode {
	res, e := fs.OpenInode(fs.Root(), Root, "/q", sys.O_CREAT|sys.O_RDWR, 0o644)
	if e != sys.OK {
		return nil
	}
	return res.Ino
}
