package vfs

import (
	"strings"

	"iocov/internal/sys"
)

// resolveOpts controls one path resolution.
type resolveOpts struct {
	// followLast dereferences a trailing symlink (open without O_NOFOLLOW).
	followLast bool
	// noSymlinks rejects any symlink in the path (openat2
	// RESOLVE_NO_SYMLINKS).
	noSymlinks bool
	// wantParent stops at the parent directory and returns the final
	// component, for create/mkdir/unlink-style operations.
	wantParent bool
}

// resolved is the outcome of a successful path walk.
type resolved struct {
	ino  *Inode
	dir  *Inode // parent directory (wantParent mode)
	name string // final component (wantParent mode)
}

// validatePath applies the global path-length limit.
func (fs *FS) validatePath(path string) sys.Errno {
	if len(path) > fs.cfg.MaxPathLen {
		return sys.ENAMETOOLONG
	}
	return sys.OK
}

// resolve walks path starting at base (the process cwd or an openat dirfd
// directory), enforcing permission, name-length, and symlink-depth rules.
// It must be called with fs.mu held.
func (fs *FS) resolve(base *Inode, cred Cred, path string, opt resolveOpts) (resolved, sys.Errno) {
	if e := fs.validatePath(path); e != sys.OK {
		return resolved{}, e
	}
	if path == "" {
		return resolved{}, sys.ENOENT
	}
	depth := 0
	return fs.walk(base, cred, path, opt, &depth)
}

func (fs *FS) walk(base *Inode, cred Cred, path string, opt resolveOpts, depth *int) (resolved, sys.Errno) {
	cur := base
	if strings.HasPrefix(path, "/") {
		cur = fs.root
	}
	components := splitPath(path)
	trailingSlash := strings.HasSuffix(path, "/") && path != "/"

	if len(components) == 0 {
		// Path was "/" (or equivalent).
		if opt.wantParent {
			return resolved{}, sys.EEXIST
		}
		return resolved{ino: cur}, sys.OK
	}

	for idx, comp := range components {
		last := idx == len(components)-1
		if len(comp) > fs.cfg.MaxNameLen {
			return resolved{}, sys.ENAMETOOLONG
		}
		if cur.typ != TypeDir {
			return resolved{}, sys.ENOTDIR
		}
		if e := checkAccess(cur, cred, permExec); e != sys.OK {
			return resolved{}, e
		}

		var next *Inode
		switch comp {
		case ".":
			next = cur
		case "..":
			next = cur.parent
		default:
			next = cur.children[comp]
		}

		if last && opt.wantParent {
			if comp == "." || comp == ".." {
				return resolved{}, sys.EINVAL
			}
			if next != nil && next.typ == TypeSymlink && opt.followLast {
				// Creating through a dangling or existing symlink: follow it
				// so O_CREAT on a symlink to a file works like Linux.
				res, e := fs.followSymlink(cur, cred, next, opt, depth)
				if e != sys.OK {
					return resolved{}, e
				}
				return res, sys.OK
			}
			return resolved{dir: cur, name: comp, ino: next}, sys.OK
		}

		if next == nil {
			return resolved{}, sys.ENOENT
		}

		if next.typ == TypeSymlink {
			if opt.noSymlinks {
				return resolved{}, sys.ELOOP
			}
			if !last || opt.followLast || trailingSlash {
				*depth++
				if *depth > fs.cfg.MaxSymlinkDepth {
					return resolved{}, sys.ELOOP
				}
				target := next.target
				rest := strings.Join(components[idx+1:], "/")
				if rest != "" {
					target = target + "/" + rest
				} else if trailingSlash {
					target += "/"
				}
				return fs.walk(cur, cred, target, opt, depth)
			}
		}
		cur = next
	}

	if trailingSlash && cur.typ != TypeDir {
		return resolved{}, sys.ENOTDIR
	}
	return resolved{ino: cur}, sys.OK
}

// followSymlink resolves a trailing symlink encountered in wantParent mode.
func (fs *FS) followSymlink(dir *Inode, cred Cred, link *Inode, opt resolveOpts, depth *int) (resolved, sys.Errno) {
	*depth++
	if *depth > fs.cfg.MaxSymlinkDepth {
		return resolved{}, sys.ELOOP
	}
	return fs.walk(dir, cred, link.target, opt, depth)
}

func splitPath(path string) []string {
	raw := strings.Split(path, "/")
	out := raw[:0]
	for _, c := range raw {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

// Lookup resolves path relative to base and returns the inode's metadata.
// It follows trailing symlinks, like stat(2).
func (fs *FS) Lookup(base *Inode, cred Cred, path string) (Stat, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return Stat{}, e
	}
	return fs.statLocked(res.ino), sys.OK
}

// LookupNoFollow is Lookup without trailing-symlink dereference (lstat).
func (fs *FS) LookupNoFollow(base *Inode, cred Cred, path string) (Stat, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{})
	if e != sys.OK {
		return Stat{}, e
	}
	return fs.statLocked(res.ino), sys.OK
}

// LookupInode resolves a path to the inode itself; the kernel layer uses it
// for chdir and the *at dirfd checks.
func (fs *FS) LookupInode(base *Inode, cred Cred, path string, follow bool) (*Inode, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: follow})
	if e != sys.OK {
		return nil, e
	}
	return res.ino, sys.OK
}
