// Package vfs implements the in-memory POSIX filesystem that stands in for
// Ext4 in this reproduction. It provides inodes, directories, symlink
// resolution, permission checks, extended attributes, block-based space
// accounting, and per-user quotas, and it returns the real Linux errno set
// so that IOCov's output-coverage partitions are exercised the same way they
// would be on a real kernel.
//
// The package is deliberately split along the lines of a real kernel
// filesystem: path resolution (resolve.go), regular-file I/O (file.go),
// namespace operations (namespace.go), and extended attributes (xattr.go).
// The syscall ABI — file descriptors, *at resolution, flag validation — lives
// one layer up in internal/kernel.
package vfs

import (
	"sync"

	"iocov/internal/sys"
)

// NodeType discriminates the inode kinds the filesystem supports.
type NodeType int

// Supported inode types.
const (
	TypeFile NodeType = iota
	TypeDir
	TypeSymlink
)

func (t NodeType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return "unknown"
	}
}

// Cred identifies the caller of a filesystem operation. UID 0 bypasses
// permission checks, as on Linux.
type Cred struct {
	UID uint32
	GID uint32
}

// Root is the superuser credential.
var Root = Cred{UID: 0, GID: 0}

// Config fixes the limits of a filesystem instance. The defaults model a
// small Ext4 partition: 4 KiB blocks, 255-byte names, 4096-byte paths, and a
// per-inode xattr capacity similar to Ext4's in-inode extended attribute
// space.
type Config struct {
	// CapacityBytes is the size of the backing device. Exhausting it makes
	// allocating writes fail with ENOSPC.
	CapacityBytes int64
	// BlockSize is the allocation unit used for space accounting.
	BlockSize int64
	// MaxFileSize bounds a single file; writes and truncates past it fail
	// with EFBIG. Ext4's limit is 16 TiB with 4 KiB blocks.
	MaxFileSize int64
	// MaxNameLen bounds one path component (ENAMETOOLONG).
	MaxNameLen int
	// MaxPathLen bounds an entire path argument (ENAMETOOLONG).
	MaxPathLen int
	// MaxSymlinkDepth bounds symlink recursion (ELOOP).
	MaxSymlinkDepth int
	// MaxXattrValue bounds one extended-attribute value (like Linux
	// XATTR_SIZE_MAX).
	MaxXattrValue int
	// XattrCapacity bounds the total xattr bytes stored in one inode,
	// modelling Ext4's in-inode xattr space.
	XattrCapacity int
	// QuotaBytes, when non-zero, is a per-UID block quota; exceeding it
	// fails with EDQUOT. UID 0 is exempt.
	QuotaBytes int64
	// ReadOnly mounts the filesystem read-only; every mutating operation
	// fails with EROFS.
	ReadOnly bool
	// Bugs selects the injectable defects used by the bug-study
	// reproduction. The zero value is a correct filesystem.
	Bugs BugSet
}

// BugSet enables the injectable bugs modelled on the commits the paper's bug
// study analyzes. Each bug is guarded by a specific input or output
// condition, which is the point: the buggy code is executed (covered) by
// ordinary workloads but misbehaves only for particular arguments.
type BugSet struct {
	// XattrSizeOverflow reproduces Figure 1 (ext4 xattr min_offs overflow,
	// fixed by EXT4_INODE_HAS_XATTR_SPACE): a setxattr whose value has the
	// maximum allowed size silently corrupts the inode's xattr block
	// instead of returning ENOSPC.
	XattrSizeOverflow bool
	// LargefileOpen reproduces the XFS generic_file_open class of bug
	// ([62]): opening a file larger than 2 GiB without O_LARGEFILE should
	// fail with EOVERFLOW, but the buggy path succeeds and later reads
	// return truncated sizes (modelled as corruption).
	LargefileOpen bool
	// NowaitWriteENOSPC reproduces the BtrFS NOWAIT buffered-write bug
	// ([36]): an O_NONBLOCK write that would need new allocation wrongly
	// returns ENOSPC even though space is available.
	NowaitWriteENOSPC bool
	// TruncateExpandError reproduces the ext4 resize class ([32]): growing
	// a file with truncate to a size whose final block is exactly at a
	// block boundary stops short (size set one block too small).
	TruncateExpandError bool
	// GetBranchErrno reproduces the ext4_get_branch error-code bug ([22]):
	// a read that hits a (simulated) bad block returns success with zero
	// bytes instead of EIO.
	GetBranchErrno bool
	// FsyncIgnored models the crash-consistency bug class CrashMonkey
	// hunts: fsync/fdatasync return success without actually persisting,
	// so data acknowledged as durable is lost on a crash. Only observable
	// through the crash simulator (internal/crashsim).
	FsyncIgnored bool
}

// DefaultConfig returns the configuration used throughout the evaluation: a
// 1 GiB device with Ext4-like limits.
func DefaultConfig() Config {
	return Config{
		CapacityBytes:   1 << 30,
		BlockSize:       4096,
		MaxFileSize:     16 << 40,
		MaxNameLen:      255,
		MaxPathLen:      4096,
		MaxSymlinkDepth: 40,
		MaxXattrValue:   1 << 16,
		XattrCapacity:   1 << 16,
	}
}

// FS is an in-memory filesystem instance. All methods are safe for
// concurrent use; a single mutex serializes operations, matching the
// granularity IOCov needs (argument/return observation, not scalability).
type FS struct {
	// root is set once in New and immutable afterwards; the inode tree it
	// anchors is guarded by mu like all other mutable state.
	root *Inode

	mu      sync.Mutex
	cfg     Config
	nextIno uint64
	// clock is the logical timestamp source; it ticks on every operation
	// that stamps a time.
	clock uint64

	usedBlocks  int64
	totalBlocks int64
	quotaUsed   map[uint32]int64

	// corrupted records silent-corruption events produced by injected
	// bugs; CheckConsistency surfaces them the way a crash-consistency or
	// differential checker would.
	corrupted []string

	// regions, when non-nil, records which modelled kernel code regions an
	// operation executed; the bug-study reproduction uses it to measure
	// "line covered but bug missed".
	regions *RegionSet
}

// New creates an empty filesystem with the given configuration. Invalid
// configurations (zero block size or capacity) are normalized to defaults.
func New(cfg Config) *FS {
	def := DefaultConfig()
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = def.BlockSize
	}
	if cfg.CapacityBytes <= 0 {
		cfg.CapacityBytes = def.CapacityBytes
	}
	if cfg.MaxFileSize <= 0 {
		cfg.MaxFileSize = def.MaxFileSize
	}
	if cfg.MaxNameLen <= 0 {
		cfg.MaxNameLen = def.MaxNameLen
	}
	if cfg.MaxPathLen <= 0 {
		cfg.MaxPathLen = def.MaxPathLen
	}
	if cfg.MaxSymlinkDepth <= 0 {
		cfg.MaxSymlinkDepth = def.MaxSymlinkDepth
	}
	if cfg.MaxXattrValue <= 0 {
		cfg.MaxXattrValue = def.MaxXattrValue
	}
	if cfg.XattrCapacity <= 0 {
		cfg.XattrCapacity = def.XattrCapacity
	}
	fs := &FS{
		cfg:         cfg,
		nextIno:     1,
		totalBlocks: cfg.CapacityBytes / cfg.BlockSize,
		quotaUsed:   make(map[uint32]int64),
	}
	fs.root = fs.newInode(TypeDir, 0o755, Root)
	fs.root.parent = fs.root
	return fs
}

// Config returns a copy of the filesystem's configuration. It takes the
// lock: SetReadOnly mutates cfg.ReadOnly at remount, and an unlocked read
// here races with it.
func (fs *FS) Config() Config {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cfg
}

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

// SetReadOnly remounts the filesystem read-only (or read-write).
func (fs *FS) SetReadOnly(ro bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cfg.ReadOnly = ro
}

// AttachRegions installs a region tracker used by the bug-study harness to
// model line coverage of the simulated kernel code.
func (fs *FS) AttachRegions(r *RegionSet) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.regions = r
}

func (fs *FS) hitRegion(name string) {
	if fs.regions != nil {
		fs.regions.Hit(name)
	}
}

// tick advances the logical clock.
func (fs *FS) tick() uint64 {
	fs.clock++
	return fs.clock
}

// TouchAtime stamps an access time on ino; the kernel layer calls it after
// successful reads unless the descriptor was opened with O_NOATIME.
func (fs *FS) TouchAtime(ino *Inode) {
	fs.mu.Lock()
	ino.atime = fs.tick()
	fs.mu.Unlock()
}

// stampData records a data modification (mtime+ctime) and bumps the
// generation. Callers hold fs.mu.
func (fs *FS) stampData(ino *Inode) {
	now := fs.tick()
	ino.mtime, ino.ctime = now, now
	ino.touch()
}

// stampMeta records a metadata change (ctime) and bumps the generation.
// Callers hold fs.mu.
func (fs *FS) stampMeta(ino *Inode) {
	ino.ctime = fs.tick()
	ino.touch()
}

// UsedBlocks reports the number of allocated blocks.
func (fs *FS) UsedBlocks() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.usedBlocks
}

// FreeBytes reports the unallocated capacity in bytes.
func (fs *FS) FreeBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return (fs.totalBlocks - fs.usedBlocks) * fs.cfg.BlockSize
}

// CheckConsistency returns the silent-corruption records accumulated by
// injected bugs. A correct filesystem always returns an empty slice.
func (fs *FS) CheckConsistency() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]string(nil), fs.corrupted...)
}

func (fs *FS) recordCorruption(what string) {
	fs.corrupted = append(fs.corrupted, what)
}

// chargeBlocks allocates delta blocks to uid, enforcing device capacity and
// quota. A negative delta releases blocks.
func (fs *FS) chargeBlocks(cred Cred, delta int64) sys.Errno {
	if delta > 0 {
		if fs.usedBlocks+delta > fs.totalBlocks {
			return sys.ENOSPC
		}
		if fs.cfg.QuotaBytes > 0 && cred.UID != 0 {
			limit := fs.cfg.QuotaBytes / fs.cfg.BlockSize
			if fs.quotaUsed[cred.UID]+delta > limit {
				return sys.EDQUOT
			}
		}
	}
	fs.usedBlocks += delta
	if fs.cfg.QuotaBytes > 0 && cred.UID != 0 {
		fs.quotaUsed[cred.UID] += delta
		if fs.quotaUsed[cred.UID] < 0 {
			fs.quotaUsed[cred.UID] = 0
		}
	}
	if fs.usedBlocks < 0 {
		fs.usedBlocks = 0
	}
	return sys.OK
}

// RegionSet tracks which modelled kernel code regions have executed. It is
// the stand-in for Gcov line coverage in the bug-study reproduction.
type RegionSet struct {
	mu   sync.Mutex
	hits map[string]int64
}

// NewRegionSet returns an empty tracker.
func NewRegionSet() *RegionSet {
	return &RegionSet{hits: make(map[string]int64)}
}

// Hit records one execution of region name.
func (r *RegionSet) Hit(name string) {
	r.mu.Lock()
	r.hits[name]++
	r.mu.Unlock()
}

// Count returns how many times region name executed.
func (r *RegionSet) Count(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[name]
}

// Covered reports whether region name executed at least once.
func (r *RegionSet) Covered(name string) bool { return r.Count(name) > 0 }

// Names returns the regions hit so far (unordered).
func (r *RegionSet) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hits))
	for n := range r.hits {
		out = append(out, n)
	}
	return out
}
