package vfs

import (
	"bytes"
	"strings"
	"testing"

	"iocov/internal/sys"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(DefaultConfig())
}

func mustMkdir(t *testing.T, fs *FS, path string) {
	t.Helper()
	if e := fs.Mkdir(fs.Root(), Root, path, 0o755); e != sys.OK {
		t.Fatalf("mkdir %s: %v", path, e)
	}
}

func mustCreate(t *testing.T, fs *FS, path string) *Inode {
	t.Helper()
	res, e := fs.OpenInode(fs.Root(), Root, path, sys.O_CREAT|sys.O_RDWR, 0o644)
	if e != sys.OK {
		t.Fatalf("create %s: %v", path, e)
	}
	return res.Ino
}

func TestMkdirAndLookup(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	st, e := fs.Lookup(fs.Root(), Root, "/a/b")
	if e != sys.OK {
		t.Fatalf("lookup: %v", e)
	}
	if st.Type != TypeDir {
		t.Errorf("type = %v, want dir", st.Type)
	}
}

func TestMkdirErrors(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/a")
	if e := fs.Mkdir(fs.Root(), Root, "/a", 0o755); e != sys.EEXIST {
		t.Errorf("mkdir existing = %v, want EEXIST", e)
	}
	if e := fs.Mkdir(fs.Root(), Root, "/missing/b", 0o755); e != sys.ENOENT {
		t.Errorf("mkdir under missing = %v, want ENOENT", e)
	}
	mustCreate(t, fs, "/f")
	if e := fs.Mkdir(fs.Root(), Root, "/f/b", 0o755); e != sys.ENOTDIR {
		t.Errorf("mkdir under file = %v, want ENOTDIR", e)
	}
	long := strings.Repeat("x", 300)
	if e := fs.Mkdir(fs.Root(), Root, "/"+long, 0o755); e != sys.ENAMETOOLONG {
		t.Errorf("mkdir long name = %v, want ENAMETOOLONG", e)
	}
}

func TestOpenCreateExclusive(t *testing.T) {
	fs := newFS(t)
	if _, e := fs.OpenInode(fs.Root(), Root, "/f", sys.O_CREAT|sys.O_EXCL|sys.O_WRONLY, 0o644); e != sys.OK {
		t.Fatalf("create: %v", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/f", sys.O_CREAT|sys.O_EXCL|sys.O_WRONLY, 0o644); e != sys.EEXIST {
		t.Errorf("re-create O_EXCL = %v, want EEXIST", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/nope", sys.O_RDONLY, 0); e != sys.ENOENT {
		t.Errorf("open missing = %v, want ENOENT", e)
	}
}

func TestOpenDirectorySemantics(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/d")
	mustCreate(t, fs, "/f")
	if _, e := fs.OpenInode(fs.Root(), Root, "/f", sys.O_RDONLY|sys.O_DIRECTORY, 0); e != sys.ENOTDIR {
		t.Errorf("O_DIRECTORY on file = %v, want ENOTDIR", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/d", sys.O_WRONLY, 0); e != sys.EISDIR {
		t.Errorf("write-open dir = %v, want EISDIR", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/d", sys.O_RDONLY, 0); e != sys.OK {
		t.Errorf("read-open dir = %v, want OK", e)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	data := []byte("hello, filesystem")
	n, e := fs.WriteAt(Root, ino, data, 0, false)
	if e != sys.OK || n != len(data) {
		t.Fatalf("write = %d,%v", n, e)
	}
	buf := make([]byte, 64)
	n, e = fs.ReadAt(Root, ino, buf, 0)
	if e != sys.OK || n != len(data) {
		t.Fatalf("read = %d,%v", n, e)
	}
	if !bytes.Equal(buf[:n], data) {
		t.Errorf("read back %q, want %q", buf[:n], data)
	}
	// Sparse write: a hole reads as zeros.
	if _, e := fs.WriteAt(Root, ino, []byte("x"), 100, false); e != sys.OK {
		t.Fatalf("sparse write: %v", e)
	}
	n, e = fs.ReadAt(Root, ino, buf[:4], 50)
	if e != sys.OK || n != 4 {
		t.Fatalf("hole read = %d,%v", n, e)
	}
	if !bytes.Equal(buf[:4], []byte{0, 0, 0, 0}) {
		t.Errorf("hole = %v, want zeros", buf[:4])
	}
	if ino.Size() != 101 {
		t.Errorf("size = %d, want 101", ino.Size())
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	buf := make([]byte, 8)
	n, e := fs.ReadAt(Root, ino, buf, 1000)
	if e != sys.OK || n != 0 {
		t.Errorf("read past EOF = %d,%v, want 0,OK", n, e)
	}
}

func TestENOSPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityBytes = 64 * 1024
	fs := New(cfg)
	ino := mustCreate(t, fs, "/f")
	big := make([]byte, 128*1024)
	if _, e := fs.WriteAt(Root, ino, big, 0, false); e != sys.ENOSPC {
		t.Errorf("oversized write = %v, want ENOSPC", e)
	}
	// Failed write must not leak blocks.
	small := make([]byte, 4096)
	if _, e := fs.WriteAt(Root, ino, small, 0, false); e != sys.OK {
		t.Errorf("small write after ENOSPC = %v, want OK", e)
	}
}

func TestEDQUOT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuotaBytes = 16 * 1024
	fs := New(cfg)
	user := Cred{UID: 1000, GID: 1000}
	res, e := fs.OpenInode(fs.Root(), Root, "/f", sys.O_CREAT|sys.O_RDWR, 0o666)
	if e != sys.OK {
		t.Fatal(e)
	}
	big := make([]byte, 32*1024)
	if _, e := fs.WriteAt(user, res.Ino, big, 0, false); e != sys.EDQUOT {
		t.Errorf("quota write = %v, want EDQUOT", e)
	}
	// Root is exempt from quota.
	if _, e := fs.WriteAt(Root, res.Ino, big, 0, false); e != sys.OK {
		t.Errorf("root write = %v, want OK", e)
	}
}

func TestEFBIG(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFileSize = 1 << 20
	fs := New(cfg)
	ino := mustCreate(t, fs, "/f")
	if _, e := fs.WriteAt(Root, ino, []byte("x"), 2<<20, false); e != sys.EFBIG {
		t.Errorf("write past max size = %v, want EFBIG", e)
	}
	if e := fs.TruncateInode(Root, ino, 2<<20); e != sys.EFBIG {
		t.Errorf("truncate past max size = %v, want EFBIG", e)
	}
}

func TestTruncate(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	if _, e := fs.WriteAt(Root, ino, []byte("abcdef"), 0, false); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.Truncate(fs.Root(), Root, "/f", 3); e != sys.OK {
		t.Fatalf("shrink: %v", e)
	}
	if ino.Size() != 3 {
		t.Errorf("size = %d, want 3", ino.Size())
	}
	if e := fs.Truncate(fs.Root(), Root, "/f", 10); e != sys.OK {
		t.Fatalf("grow: %v", e)
	}
	buf := make([]byte, 10)
	n, _ := fs.ReadAt(Root, ino, buf, 0)
	if n != 10 || !bytes.Equal(buf[3:], make([]byte, 7)) {
		t.Errorf("grown tail not zeroed: %v", buf)
	}
	if e := fs.Truncate(fs.Root(), Root, "/f", -1); e != sys.EINVAL {
		t.Errorf("negative truncate = %v, want EINVAL", e)
	}
	mustMkdir(t, fs, "/d")
	if e := fs.Truncate(fs.Root(), Root, "/d", 0); e != sys.EISDIR {
		t.Errorf("truncate dir = %v, want EISDIR", e)
	}
}

func TestSymlinkResolution(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/d")
	mustCreate(t, fs, "/d/f")
	if e := fs.Symlink(fs.Root(), Root, "/d", "/link"); e != sys.OK {
		t.Fatalf("symlink: %v", e)
	}
	if _, e := fs.Lookup(fs.Root(), Root, "/link/f"); e != sys.OK {
		t.Errorf("lookup through symlink: %v", e)
	}
	// Dangling symlink.
	if e := fs.Symlink(fs.Root(), Root, "/nowhere", "/dangle"); e != sys.OK {
		t.Fatal(e)
	}
	if _, e := fs.Lookup(fs.Root(), Root, "/dangle"); e != sys.ENOENT {
		t.Errorf("dangling lookup = %v, want ENOENT", e)
	}
	// lstat-style does not follow.
	st, e := fs.LookupNoFollow(fs.Root(), Root, "/dangle")
	if e != sys.OK || st.Type != TypeSymlink {
		t.Errorf("nofollow = %v,%v, want symlink,OK", st.Type, e)
	}
}

func TestELOOP(t *testing.T) {
	fs := newFS(t)
	if e := fs.Symlink(fs.Root(), Root, "/b", "/a"); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.Symlink(fs.Root(), Root, "/a", "/b"); e != sys.OK {
		t.Fatal(e)
	}
	if _, e := fs.Lookup(fs.Root(), Root, "/a"); e != sys.ELOOP {
		t.Errorf("cyclic lookup = %v, want ELOOP", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/a", sys.O_RDONLY, 0); e != sys.ELOOP {
		t.Errorf("cyclic open = %v, want ELOOP", e)
	}
}

func TestONofollow(t *testing.T) {
	fs := newFS(t)
	mustCreate(t, fs, "/f")
	if e := fs.Symlink(fs.Root(), Root, "/f", "/lf"); e != sys.OK {
		t.Fatal(e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/lf", sys.O_RDONLY|sys.O_NOFOLLOW, 0); e != sys.ELOOP {
		t.Errorf("O_NOFOLLOW on symlink = %v, want ELOOP", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/lf", sys.O_RDONLY, 0); e != sys.OK {
		t.Errorf("follow open = %v, want OK", e)
	}
}

func TestPermissions(t *testing.T) {
	fs := newFS(t)
	user := Cred{UID: 1000, GID: 100}
	other := Cred{UID: 2000, GID: 200}
	res, e := fs.OpenInode(fs.Root(), Root, "/f", sys.O_CREAT|sys.O_WRONLY, 0o600)
	if e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.ChmodInode(Root, res.Ino, 0o600); e != sys.OK {
		t.Fatal(e)
	}
	// Make the file owned by user.
	res.Ino.uid, res.Ino.gid = user.UID, user.GID
	if _, e := fs.OpenInode(fs.Root(), user, "/f", sys.O_RDWR, 0); e != sys.OK {
		t.Errorf("owner open = %v, want OK", e)
	}
	if _, e := fs.OpenInode(fs.Root(), other, "/f", sys.O_RDONLY, 0); e != sys.EACCES {
		t.Errorf("other open = %v, want EACCES", e)
	}
	if e := fs.Chmod(fs.Root(), other, "/f", 0o777); e != sys.EPERM {
		t.Errorf("non-owner chmod = %v, want EPERM", e)
	}
	if e := fs.Chmod(fs.Root(), user, "/f", 0o644); e != sys.OK {
		t.Errorf("owner chmod = %v, want OK", e)
	}
	if _, e := fs.OpenInode(fs.Root(), other, "/f", sys.O_RDONLY, 0); e != sys.OK {
		t.Errorf("other open after chmod = %v, want OK", e)
	}
}

func TestReadOnlyMount(t *testing.T) {
	fs := newFS(t)
	mustCreate(t, fs, "/f")
	fs.SetReadOnly(true)
	if _, e := fs.OpenInode(fs.Root(), Root, "/g", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.EROFS {
		t.Errorf("create on ro = %v, want EROFS", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/f", sys.O_WRONLY, 0); e != sys.EROFS {
		t.Errorf("write-open on ro = %v, want EROFS", e)
	}
	if e := fs.Mkdir(fs.Root(), Root, "/d", 0o755); e != sys.EROFS {
		t.Errorf("mkdir on ro = %v, want EROFS", e)
	}
	if e := fs.Truncate(fs.Root(), Root, "/f", 0); e != sys.EROFS {
		t.Errorf("truncate on ro = %v, want EROFS", e)
	}
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.a", []byte("v"), 0); e != sys.EROFS {
		t.Errorf("setxattr on ro = %v, want EROFS", e)
	}
	// Reads still work.
	if _, e := fs.OpenInode(fs.Root(), Root, "/f", sys.O_RDONLY, 0); e != sys.OK {
		t.Errorf("read-open on ro = %v, want OK", e)
	}
}

func TestEOVERFLOWWithoutLargefile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityBytes = 4 << 30
	fs := New(cfg)
	ino := mustCreate(t, fs, "/big")
	// Grow to 2 GiB via truncate (sparse, cheap in blocks terms? truncate
	// charges blocks, so use a big-capacity fs).
	if e := fs.TruncateInode(Root, ino, largeFileLimit); e != sys.OK {
		t.Fatalf("grow: %v", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/big", sys.O_RDONLY, 0); e != sys.EOVERFLOW {
		t.Errorf("open 2GiB without O_LARGEFILE = %v, want EOVERFLOW", e)
	}
	if _, e := fs.OpenInode(fs.Root(), Root, "/big", sys.O_RDONLY|sys.O_LARGEFILE, 0); e != sys.OK {
		t.Errorf("open with O_LARGEFILE = %v, want OK", e)
	}
}

func TestUnlinkRmdirRename(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/d")
	mustCreate(t, fs, "/d/f")
	if e := fs.Rmdir(fs.Root(), Root, "/d"); e != sys.EBUSY {
		t.Errorf("rmdir non-empty = %v, want EBUSY", e)
	}
	if e := fs.Unlink(fs.Root(), Root, "/d"); e != sys.EISDIR {
		t.Errorf("unlink dir = %v, want EISDIR", e)
	}
	if e := fs.Rename(fs.Root(), Root, "/d/f", "/g"); e != sys.OK {
		t.Errorf("rename = %v", e)
	}
	if _, e := fs.Lookup(fs.Root(), Root, "/d/f"); e != sys.ENOENT {
		t.Errorf("old name still present: %v", e)
	}
	if e := fs.Rmdir(fs.Root(), Root, "/d"); e != sys.OK {
		t.Errorf("rmdir empty = %v", e)
	}
	if e := fs.Unlink(fs.Root(), Root, "/g"); e != sys.OK {
		t.Errorf("unlink = %v", e)
	}
	if e := fs.Unlink(fs.Root(), Root, "/g"); e != sys.ENOENT {
		t.Errorf("unlink again = %v, want ENOENT", e)
	}
}

func TestRenameIntoOwnSubtree(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	if e := fs.Rename(fs.Root(), Root, "/a", "/a/b/c"); e != sys.EINVAL {
		t.Errorf("rename into subtree = %v, want EINVAL", e)
	}
}

func TestHardLinks(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	if e := fs.Link(fs.Root(), Root, "/f", "/g"); e != sys.OK {
		t.Fatalf("link: %v", e)
	}
	if ino.Nlink() != 2 {
		t.Errorf("nlink = %d, want 2", ino.Nlink())
	}
	if e := fs.Unlink(fs.Root(), Root, "/f"); e != sys.OK {
		t.Fatal(e)
	}
	st, e := fs.Lookup(fs.Root(), Root, "/g")
	if e != sys.OK || st.Nlink != 1 {
		t.Errorf("after unlink: %+v, %v", st, e)
	}
	mustMkdir(t, fs, "/d")
	if e := fs.Link(fs.Root(), Root, "/d", "/dl"); e != sys.EPERM {
		t.Errorf("link dir = %v, want EPERM", e)
	}
}

func TestXattrBasics(t *testing.T) {
	fs := newFS(t)
	mustCreate(t, fs, "/f")
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.key", []byte("value"), 0); e != sys.OK {
		t.Fatalf("setxattr: %v", e)
	}
	buf := make([]byte, 16)
	n, e := fs.Getxattr(fs.Root(), Root, "/f", "user.key", buf)
	if e != sys.OK || string(buf[:n]) != "value" {
		t.Fatalf("getxattr = %q,%v", buf[:n], e)
	}
	// Size query with empty buffer.
	n, e = fs.Getxattr(fs.Root(), Root, "/f", "user.key", nil)
	if e != sys.OK || n != 5 {
		t.Errorf("size query = %d,%v, want 5,OK", n, e)
	}
	// Short buffer.
	if _, e := fs.Getxattr(fs.Root(), Root, "/f", "user.key", buf[:2]); e != sys.ERANGE {
		t.Errorf("short buffer = %v, want ERANGE", e)
	}
	// Missing attribute.
	if _, e := fs.Getxattr(fs.Root(), Root, "/f", "user.none", buf); e != sys.ENODATA {
		t.Errorf("missing = %v, want ENODATA", e)
	}
	// Create/replace flags.
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.key", []byte("v2"), sys.XATTR_CREATE); e != sys.EEXIST {
		t.Errorf("XATTR_CREATE on existing = %v, want EEXIST", e)
	}
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.new", []byte("v"), sys.XATTR_REPLACE); e != sys.ENODATA {
		t.Errorf("XATTR_REPLACE on missing = %v, want ENODATA", e)
	}
	// Bad namespace.
	if e := fs.Setxattr(fs.Root(), Root, "/f", "bogus.key", []byte("v"), 0); e != sys.ENOTSUP {
		t.Errorf("bad namespace = %v, want ENOTSUP", e)
	}
	// trusted.* needs root.
	user := Cred{UID: 1000, GID: 100}
	if e := fs.Setxattr(fs.Root(), user, "/f", "trusted.k", []byte("v"), 0); e != sys.EPERM {
		t.Errorf("trusted as user = %v, want EPERM", e)
	}
	// Invalid flags.
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.k", []byte("v"), 7); e != sys.EINVAL {
		t.Errorf("bad flags = %v, want EINVAL", e)
	}
}

func TestXattrLimits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxXattrValue = 100
	cfg.XattrCapacity = 200
	fs := New(cfg)
	mustCreate(t, fs, "/f")
	big := make([]byte, 101)
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.a", big, 0); e != sys.E2BIG {
		t.Errorf("oversized value = %v, want E2BIG", e)
	}
	ok := make([]byte, 90)
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.a", ok, 0); e != sys.OK {
		t.Errorf("first value = %v, want OK", e)
	}
	// Second attribute exceeds per-inode capacity: 90+6+16 + 90+6+16 > 200.
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.b", ok, 0); e != sys.ENOSPC {
		t.Errorf("capacity overflow = %v, want ENOSPC", e)
	}
	if len(fs.CheckConsistency()) != 0 {
		t.Errorf("correct fs reported corruption: %v", fs.CheckConsistency())
	}
}

func TestXattrOverflowBug(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxXattrValue = 100
	cfg.XattrCapacity = 200
	cfg.Bugs.XattrSizeOverflow = true
	fs := New(cfg)
	mustCreate(t, fs, "/f")
	ok := make([]byte, 90)
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.a", ok, 0); e != sys.OK {
		t.Fatal(e)
	}
	// Ordinary over-capacity values are still rejected under the bug...
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.b", ok, 0); e != sys.ENOSPC {
		t.Fatalf("non-max over-capacity = %v, want ENOSPC", e)
	}
	// ...but a maximum-size value slips through and corrupts the inode —
	// Figure 1's exact trigger.
	maxVal := make([]byte, cfg.MaxXattrValue)
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.c", maxVal, 0); e != sys.OK {
		t.Fatalf("max-size buggy path returned %v, want silent OK", e)
	}
	if len(fs.CheckConsistency()) == 0 {
		t.Error("expected corruption record from injected bug")
	}
}

func TestSymlinkXattrNoFollow(t *testing.T) {
	fs := newFS(t)
	mustCreate(t, fs, "/f")
	if e := fs.Symlink(fs.Root(), Root, "/f", "/l"); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.Setxattr(fs.Root(), Root, "/l", "user.k", []byte("v"), 0); e != sys.OK {
		t.Fatal(e)
	}
	// Following set put the attribute on the target, not the link.
	buf := make([]byte, 8)
	if _, e := fs.GetxattrNoFollow(fs.Root(), Root, "/l", "user.k", buf); e != sys.ENODATA {
		t.Errorf("link itself should have no attr, got %v", e)
	}
	if _, e := fs.Getxattr(fs.Root(), Root, "/f", "user.k", buf); e != sys.OK {
		t.Errorf("target missing attr: %v", e)
	}
}

func TestReadDir(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/d")
	mustCreate(t, fs, "/d/b")
	mustCreate(t, fs, "/d/a")
	names, e := fs.ReadDir(fs.Root(), Root, "/d")
	if e != sys.OK {
		t.Fatal(e)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v, want [a b]", names)
	}
	if _, e := fs.ReadDir(fs.Root(), Root, "/d/a"); e != sys.ENOTDIR {
		t.Errorf("readdir file = %v, want ENOTDIR", e)
	}
}

func TestDotDotResolution(t *testing.T) {
	fs := newFS(t)
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	mustCreate(t, fs, "/top")
	if _, e := fs.Lookup(fs.Root(), Root, "/a/b/../../top"); e != sys.OK {
		t.Errorf("dotdot lookup: %v", e)
	}
	// .. at root stays at root.
	if _, e := fs.Lookup(fs.Root(), Root, "/../top"); e != sys.OK {
		t.Errorf("root dotdot: %v", e)
	}
}

func TestPathTooLong(t *testing.T) {
	fs := newFS(t)
	long := "/" + strings.Repeat("a/", 4096)
	if _, e := fs.Lookup(fs.Root(), Root, long); e != sys.ENAMETOOLONG {
		t.Errorf("long path = %v, want ENAMETOOLONG", e)
	}
}

func TestBadBlockEIO(t *testing.T) {
	fs := newFS(t)
	ino := mustCreate(t, fs, "/f")
	if _, e := fs.WriteAt(Root, ino, []byte("data"), 0, false); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.MarkBadBlock(fs.Root(), Root, "/f"); e != sys.OK {
		t.Fatal(e)
	}
	buf := make([]byte, 4)
	if _, e := fs.ReadAt(Root, ino, buf, 0); e != sys.EIO {
		t.Errorf("bad block read = %v, want EIO", e)
	}
}

func TestGetBranchBug(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bugs.GetBranchErrno = true
	fs := New(cfg)
	ino := mustCreate(t, fs, "/f")
	if _, e := fs.WriteAt(Root, ino, []byte("data"), 0, false); e != sys.OK {
		t.Fatal(e)
	}
	if e := fs.MarkBadBlock(fs.Root(), Root, "/f"); e != sys.OK {
		t.Fatal(e)
	}
	buf := make([]byte, 4)
	n, e := fs.ReadAt(Root, ino, buf, 0)
	if e != sys.OK || n != 0 {
		t.Errorf("buggy read = %d,%v, want 0,OK", n, e)
	}
	if len(fs.CheckConsistency()) == 0 {
		t.Error("expected corruption record")
	}
}

func TestTruncateExpandBug(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bugs.TruncateExpandError = true
	fs := New(cfg)
	ino := mustCreate(t, fs, "/f")
	// Non-boundary expansion works.
	if e := fs.TruncateInode(Root, ino, 5000); e != sys.OK {
		t.Fatal(e)
	}
	if ino.Size() != 5000 {
		t.Errorf("size = %d, want 5000", ino.Size())
	}
	// Block-aligned expansion stops short under the bug.
	if e := fs.TruncateInode(Root, ino, 8192); e != sys.OK {
		t.Fatal(e)
	}
	if ino.Size() != 8192-4096 {
		t.Errorf("buggy size = %d, want %d", ino.Size(), 8192-4096)
	}
	if len(fs.CheckConsistency()) == 0 {
		t.Error("expected corruption record")
	}
}

func TestNowaitWriteBug(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bugs.NowaitWriteENOSPC = true
	fs := New(cfg)
	ino := mustCreate(t, fs, "/f")
	// Allocating write under NOWAIT wrongly fails.
	if _, e := fs.WriteAt(Root, ino, make([]byte, 8192), 0, true); e != sys.ENOSPC {
		t.Errorf("buggy nowait write = %v, want ENOSPC", e)
	}
	// Same write without NOWAIT succeeds — the input-dependent bug.
	if _, e := fs.WriteAt(Root, ino, make([]byte, 8192), 0, false); e != sys.OK {
		t.Errorf("blocking write = %v, want OK", e)
	}
	// Overwrite of existing blocks under NOWAIT also succeeds.
	if _, e := fs.WriteAt(Root, ino, []byte("x"), 0, true); e != sys.OK {
		t.Errorf("non-allocating nowait write = %v, want OK", e)
	}
}

func TestRegionTracking(t *testing.T) {
	fs := newFS(t)
	regions := NewRegionSet()
	fs.AttachRegions(regions)
	mustCreate(t, fs, "/f")
	if !regions.Covered("do_sys_open") {
		t.Error("do_sys_open not covered")
	}
	if !regions.Covered("generic_file_open") {
		t.Error("generic_file_open not covered")
	}
	if regions.Covered("vfs_setxattr") {
		t.Error("vfs_setxattr covered without setxattr call")
	}
	if e := fs.Setxattr(fs.Root(), Root, "/f", "user.k", []byte("v"), 0); e != sys.OK {
		t.Fatal(e)
	}
	if !regions.Covered("ext4_xattr_ibody_set") {
		t.Error("ext4_xattr_ibody_set not covered")
	}
}

func TestBlockAccounting(t *testing.T) {
	fs := newFS(t)
	before := fs.UsedBlocks()
	ino := mustCreate(t, fs, "/f")
	if _, e := fs.WriteAt(Root, ino, make([]byte, 10000), 0, false); e != sys.OK {
		t.Fatal(e)
	}
	// 10000 bytes = 3 blocks, +1 metadata block for the create.
	if got := fs.UsedBlocks() - before; got != 4 {
		t.Errorf("used blocks delta = %d, want 4", got)
	}
	if e := fs.Unlink(fs.Root(), Root, "/f"); e != sys.OK {
		t.Fatal(e)
	}
	if got := fs.UsedBlocks(); got != before {
		t.Errorf("blocks after unlink = %d, want %d", got, before)
	}
}

// TestConfigRemountRace pins the Config/SetReadOnly locking (found by
// lockcheck): both run concurrently here, so the -race lane catches any
// regression to the old unlocked cfg read.
func TestConfigRemountRace(t *testing.T) {
	fs := newFS(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			fs.SetReadOnly(i%2 == 0)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = fs.Config()
	}
	<-done
	fs.SetReadOnly(true)
	if !fs.Config().ReadOnly {
		t.Fatal("Config did not observe SetReadOnly(true)")
	}
	fs.SetReadOnly(false)
	if fs.Config().ReadOnly {
		t.Fatal("Config did not observe SetReadOnly(false)")
	}
}
