package vfs

import (
	"fmt"
	"strings"

	"iocov/internal/sys"
)

// xattrEntryOverhead models the per-entry metadata footprint inside the
// inode's xattr space (entry header + padding), mirroring Ext4's on-disk
// entry overhead.
const xattrEntryOverhead = 16

// validXattrName enforces the namespace.name form Linux requires.
func validXattrName(name string) sys.Errno {
	if name == "" || len(name) > 255 {
		return sys.ERANGE
	}
	dot := strings.IndexByte(name, '.')
	if dot <= 0 || dot == len(name)-1 {
		return sys.ENOTSUP
	}
	switch name[:dot] {
	case "user", "trusted", "security", "system":
		return sys.OK
	default:
		return sys.ENOTSUP
	}
}

// Setxattr sets an extended attribute on the object at path (following a
// trailing symlink). flags is 0, XATTR_CREATE, or XATTR_REPLACE.
func (fs *FS) Setxattr(base *Inode, cred Cred, path, name string, value []byte, flags int) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return e
	}
	return fs.setxattrLocked(cred, res.ino, name, value, flags)
}

// SetxattrNoFollow is lsetxattr: it operates on a trailing symlink itself.
func (fs *FS) SetxattrNoFollow(base *Inode, cred Cred, path, name string, value []byte, flags int) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{})
	if e != sys.OK {
		return e
	}
	return fs.setxattrLocked(cred, res.ino, name, value, flags)
}

// SetxattrInode is fsetxattr's filesystem half.
func (fs *FS) SetxattrInode(cred Cred, ino *Inode, name string, value []byte, flags int) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.setxattrLocked(cred, ino, name, value, flags)
}

func (fs *FS) setxattrLocked(cred Cred, ino *Inode, name string, value []byte, flags int) sys.Errno {
	fs.hitRegion("vfs_setxattr")
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	if flags&^(sys.XATTR_CREATE|sys.XATTR_REPLACE) != 0 ||
		flags == sys.XATTR_CREATE|sys.XATTR_REPLACE {
		return sys.EINVAL
	}
	if e := validXattrName(name); e != sys.OK {
		return e
	}
	if len(value) > fs.cfg.MaxXattrValue {
		return sys.E2BIG
	}
	// user.* attributes follow file permissions; trusted.* needs root.
	if strings.HasPrefix(name, "trusted.") && cred.UID != 0 {
		return sys.EPERM
	}
	if e := checkAccess(ino, cred, permWrite); e != sys.OK {
		return e
	}
	old, exists := ino.xattrs[name]
	if flags == sys.XATTR_CREATE && exists {
		return sys.EEXIST
	}
	if flags == sys.XATTR_REPLACE && !exists {
		return sys.ENODATA
	}

	newBytes := ino.xattrBytes + len(name) + len(value) + xattrEntryOverhead
	if exists {
		newBytes -= len(name) + len(old) + xattrEntryOverhead
	}

	// ext4_xattr_ibody_set (Figure 1): the correct code checks whether the
	// inode has room for the new entry; the buggy code's bookkeeping
	// overflows precisely when the value has the maximum allowed size, so
	// that one boundary input corrupts the block while every other
	// over-capacity set is still rejected normally. The region markers
	// model Gcov's three granularities: entering the function (function
	// coverage), evaluating the guard (line coverage), and taking the
	// rejection branch (branch coverage).
	fs.hitRegion("ext4_xattr_ibody_set")
	fs.hitRegion("ext4_xattr_ibody_set:guard")
	if newBytes > fs.cfg.XattrCapacity {
		if fs.cfg.Bugs.XattrSizeOverflow && len(value) == fs.cfg.MaxXattrValue {
			// min_offs underflow: the entry is "stored" over other data.
			ino.xattrs[name] = append([]byte(nil), value...)
			ino.xattrBytes = newBytes
			fs.stampMeta(ino)
			fs.recordCorruption(fmt.Sprintf("xattr-overflow: inode %d name %q size %d exceeds capacity %d",
				ino.ino, name, len(value), fs.cfg.XattrCapacity))
			return sys.OK
		}
		fs.hitRegion("ext4_xattr_ibody_set:nospc-branch")
		return sys.ENOSPC
	}

	ino.xattrs[name] = append([]byte(nil), value...)
	ino.xattrBytes = newBytes
	fs.stampMeta(ino)
	return sys.OK
}

// Getxattr reads an extended attribute into buf and returns the value's
// size. A zero-length buf queries the size (like getxattr(2) with size 0);
// a buf shorter than the value fails with ERANGE.
func (fs *FS) Getxattr(base *Inode, cred Cred, path, name string, buf []byte) (int, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return 0, e
	}
	return fs.getxattrLocked(cred, res.ino, name, buf)
}

// GetxattrNoFollow is lgetxattr.
func (fs *FS) GetxattrNoFollow(base *Inode, cred Cred, path, name string, buf []byte) (int, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{})
	if e != sys.OK {
		return 0, e
	}
	return fs.getxattrLocked(cred, res.ino, name, buf)
}

// GetxattrInode is fgetxattr's filesystem half.
func (fs *FS) GetxattrInode(cred Cred, ino *Inode, name string, buf []byte) (int, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.getxattrLocked(cred, ino, name, buf)
}

func (fs *FS) getxattrLocked(cred Cred, ino *Inode, name string, buf []byte) (int, sys.Errno) {
	fs.hitRegion("vfs_getxattr")
	if e := validXattrName(name); e != sys.OK {
		return 0, e
	}
	if e := checkAccess(ino, cred, permRead); e != sys.OK {
		return 0, e
	}
	val, ok := ino.xattrs[name]
	if !ok {
		return 0, sys.ENODATA
	}
	if len(buf) == 0 {
		return len(val), sys.OK
	}
	if len(buf) < len(val) {
		return 0, sys.ERANGE
	}
	copy(buf, val)
	return len(val), sys.OK
}

// Removexattr deletes an extended attribute (following trailing symlinks).
func (fs *FS) Removexattr(base *Inode, cred Cred, path, name string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return e
	}
	return fs.removexattrLocked(cred, res.ino, name)
}

// RemovexattrInode is fremovexattr's filesystem half.
func (fs *FS) RemovexattrInode(cred Cred, ino *Inode, name string) sys.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.removexattrLocked(cred, ino, name)
}

func (fs *FS) removexattrLocked(cred Cred, ino *Inode, name string) sys.Errno {
	fs.hitRegion("vfs_removexattr")
	if fs.cfg.ReadOnly {
		return sys.EROFS
	}
	if e := validXattrName(name); e != sys.OK {
		return e
	}
	if strings.HasPrefix(name, "trusted.") && cred.UID != 0 {
		return sys.EPERM
	}
	if e := checkAccess(ino, cred, permWrite); e != sys.OK {
		return e
	}
	val, ok := ino.xattrs[name]
	if !ok {
		return sys.ENODATA
	}
	delete(ino.xattrs, name)
	ino.xattrBytes -= len(name) + len(val) + xattrEntryOverhead
	fs.stampMeta(ino)
	return sys.OK
}

// ListXattrs returns the attribute names on the object at path, sorted.
func (fs *FS) ListXattrs(base *Inode, cred Cred, path string) ([]string, sys.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res, e := fs.resolve(base, cred, path, resolveOpts{followLast: true})
	if e != sys.OK {
		return nil, e
	}
	if e := checkAccess(res.ino, cred, permRead); e != sys.OK {
		return nil, e
	}
	names := make([]string, 0, len(res.ino.xattrs))
	for n := range res.ino.xattrs {
		names = append(names, n)
	}
	return sys.SortedNames(names), sys.OK
}
