// Package iocov is the public facade of the IOCov reproduction: input and
// output coverage measurement for file-system test suites, after Liu et
// al., "Input and Output Coverage Needed in File System Testing"
// (HotStorage '23).
//
// The package re-exports the pipeline pieces as aliases and provides
// one-call constructors for the two ways IOCov is used:
//
//   - offline: parse an LTTng-style trace file, filter it to the mount
//     point under test, and compute coverage (AnalyzeTrace);
//   - live: attach the analyzer (behind the mount filter) as the trace
//     sink of the simulated kernel and run a workload (NewPipeline).
//
// The heavy lifting lives in the internal packages: internal/vfs (the
// simulated Ext4-like filesystem), internal/kernel (the syscall layer and
// tracer), internal/trace (the LTTng substitute), internal/partition and
// internal/coverage (the IOCov analyzer proper), and internal/metrics (the
// Test Coverage Deviation metric).
package iocov

import (
	"bufio"
	"fmt"
	"io"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/metrics"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// Core pipeline types, aliased for downstream use.
type (
	// Analyzer computes input and output coverage from traced syscalls.
	Analyzer = coverage.Analyzer
	// Options configures an Analyzer.
	Options = coverage.Options
	// Report is one argument's or output space's coverage over its
	// partition domain.
	Report = coverage.Report
	// Event is one traced syscall.
	Event = trace.Event
	// Sink consumes traced syscalls.
	Sink = trace.Sink
	// Filter is the stateful mount-point trace filter.
	Filter = trace.Filter
	// Collector is an in-memory Sink retaining every event.
	Collector = trace.Collector
	// Kernel is the simulated syscall layer.
	Kernel = kernel.Kernel
	// Proc is a simulated process issuing syscalls.
	Proc = kernel.Proc
	// FS is the simulated filesystem.
	FS = vfs.FS
	// FSConfig configures the simulated filesystem.
	FSConfig = vfs.Config
)

// NewAnalyzer returns an analyzer with the paper's default configuration
// (variant merging on).
func NewAnalyzer() *Analyzer {
	return coverage.NewAnalyzer(coverage.DefaultOptions())
}

// NewCollector returns an empty in-memory event collector.
func NewCollector() *Collector { return trace.NewCollector() }

// NewAnalyzerWith returns an analyzer with explicit options.
func NewAnalyzerWith(opts Options) *Analyzer {
	return coverage.NewAnalyzer(opts)
}

// AnalyzeTrace runs the offline pipeline: parse the trace from r (the
// LTTng-style text format or the compact binary format, auto-detected from
// the stream header), keep only syscalls under mountPattern (a regexp
// matched against path arguments, with fd-to-path reconstruction for
// descriptor-based syscalls), and return the coverage analyzer plus the
// number of events kept and dropped.
func AnalyzeTrace(r io.Reader, mountPattern string) (*Analyzer, int64, int64, error) {
	f, err := trace.NewFilter(mountPattern)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("iocov: bad mount pattern: %w", err)
	}
	an := NewAnalyzer()
	next, err := traceDecoder(r)
	if err != nil {
		return nil, 0, 0, err
	}
	for {
		ev, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, 0, err
		}
		if f.Keep(ev) {
			an.Add(ev)
		}
	}
	kept, dropped := f.Stats()
	return an, kept, dropped, nil
}

// traceDecoder sniffs the stream format and returns an event iterator.
func traceDecoder(r io.Reader) (func() (Event, error), error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if string(head) == "IOCV" {
		p := trace.NewBinaryParser(br)
		return p.Next, nil
	}
	p := trace.NewParser(br)
	return p.Next, nil
}

// Pipeline is a live tracing setup: a simulated kernel whose syscalls flow
// through the mount filter into the analyzer (and optionally into a raw
// trace writer).
type Pipeline struct {
	Kernel   *Kernel
	Analyzer *Analyzer
	Filter   *Filter

	flush func() error
}

// NewPipeline builds a live pipeline over a fresh default filesystem. If
// traceOut is non-nil, every raw (unfiltered) event is also serialized to
// it in the LTTng-style text format; call trace.Writer.Flush via
// FlushTrace when done.
func NewPipeline(mountPattern string, traceOut io.Writer) (*Pipeline, error) {
	return NewPipelineFS(vfs.New(vfs.DefaultConfig()), mountPattern, traceOut)
}

// NewPipelineFS is NewPipeline over a caller-provided filesystem.
func NewPipelineFS(fs *FS, mountPattern string, traceOut io.Writer) (*Pipeline, error) {
	f, err := trace.NewFilter(mountPattern)
	if err != nil {
		return nil, fmt.Errorf("iocov: bad mount pattern: %w", err)
	}
	an := NewAnalyzer()
	var sink trace.Sink = &trace.FilteringSink{F: f, Next: an}
	var tw *trace.Writer
	if traceOut != nil {
		tw = trace.NewWriter(traceOut)
		sink = trace.MultiSink{tw, sink}
	}
	k := kernel.New(fs, kernel.Options{Sink: sink})
	p := &Pipeline{Kernel: k, Analyzer: an, Filter: f}
	if tw != nil {
		p.flush = tw.Flush
	}
	return p, nil
}

// flush is set when a trace writer is attached.
func (p *Pipeline) FlushTrace() error {
	if p.flush == nil {
		return nil
	}
	return p.flush()
}

// TCD computes the Test Coverage Deviation of a report against a uniform
// target (§4 of the paper): the log-space RMSD between observed partition
// frequencies and the target.
func TCD(r *Report, target int64) float64 {
	return metrics.UniformTCD(r.Frequencies(), target)
}

// TCDCrossover finds the smallest uniform target at which suite b's TCD
// becomes no worse than suite a's, within [1, maxTarget].
func TCDCrossover(a, b *Report, maxTarget int64) (int64, bool) {
	return metrics.Crossover(a.Frequencies(), b.Frequencies(), maxTarget)
}
