package iocov

import (
	"bytes"
	"strings"
	"testing"

	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// runSmallWorkload drives a few syscalls through a pipeline's kernel.
func runSmallWorkload(t *testing.T, pipe *Pipeline) {
	t.Helper()
	p := pipe.Kernel.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	if e := p.Mkdir("/mnt", 0o755); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Mkdir("/mnt/test", 0o755); e != sys.OK {
		t.Fatal(e)
	}
	fd, e := p.Open("/mnt/test/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	if e != sys.OK {
		t.Fatal(e)
	}
	if _, e := p.Write(fd, make([]byte, 4096)); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Close(fd); e != sys.OK {
		t.Fatal(e)
	}
	// Out-of-mount op the filter must drop.
	if e := p.Mkdir("/other", 0o755); e != sys.OK {
		t.Fatal(e)
	}
}

func TestPipelineLive(t *testing.T) {
	pipe, err := NewPipeline(`^/mnt/test(/|$)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	runSmallWorkload(t, pipe)
	an := pipe.Analyzer
	if an.Analyzed() != 4 { // mkdir of the mount point itself, open, write, close
		t.Errorf("analyzed = %d, want 4", an.Analyzed())
	}
	if got := an.Input("open", "flags").Count("O_CREAT"); got != 1 {
		t.Errorf("O_CREAT = %d", got)
	}
	if pipe.FlushTrace() != nil {
		t.Error("FlushTrace without writer should be nil")
	}
}

func TestPipelineTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pipe, err := NewPipeline(`^/mnt/test(/|$)`, &buf)
	if err != nil {
		t.Fatal(err)
	}
	runSmallWorkload(t, pipe)
	if err := pipe.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	// The raw trace contains every event, including filtered ones.
	if !strings.Contains(buf.String(), "/other") {
		t.Error("raw trace missing out-of-mount event")
	}
	// Offline analysis of the captured trace matches the live analyzer.
	an, kept, dropped, err := AnalyzeTrace(&buf, `^/mnt/test(/|$)`)
	if err != nil {
		t.Fatal(err)
	}
	if kept == 0 || dropped == 0 {
		t.Errorf("kept=%d dropped=%d, want both nonzero", kept, dropped)
	}
	if an.Analyzed() != pipe.Analyzer.Analyzed() {
		t.Errorf("offline analyzed %d, live %d", an.Analyzed(), pipe.Analyzer.Analyzed())
	}
	live := pipe.Analyzer.InputReport("open", "flags").Frequencies()
	offline := an.InputReport("open", "flags").Frequencies()
	for i := range live {
		if live[i] != offline[i] {
			t.Fatalf("offline/live coverage differs at %d", i)
		}
	}
}

func TestAnalyzeTraceBadPattern(t *testing.T) {
	if _, _, _, err := AnalyzeTrace(strings.NewReader(""), `([`); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := NewPipeline(`([`, nil); err == nil {
		t.Error("bad pattern accepted by NewPipeline")
	}
}

func TestAnalyzeTraceMalformed(t *testing.T) {
	if _, _, _, err := AnalyzeTrace(strings.NewReader("garbage line\n"), `^/`); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestTCDHelpers(t *testing.T) {
	pipe, err := NewPipeline(`^/mnt/test(/|$)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	runSmallWorkload(t, pipe)
	rep := pipe.Analyzer.InputReport("open", "flags")
	if rep == nil {
		t.Fatal("no report")
	}
	if tcd := TCD(rep, 1000); tcd <= 0 {
		t.Errorf("TCD = %f, want > 0", tcd)
	}
	// Crossover of a report against itself exists at target 1.
	if cross, ok := TCDCrossover(rep, rep, 1000); !ok || cross != 1 {
		t.Errorf("self-crossover = %d,%v", cross, ok)
	}
}

func TestNewAnalyzerWithOptions(t *testing.T) {
	an := NewAnalyzerWith(Options{MergeVariants: false})
	an.Add(Event{Name: "openat", Path: "/f",
		Args: map[string]int64{"flags": 0, "mode": 0}, Ret: 3})
	if an.Output("openat") == nil {
		t.Error("unmerged analyzer lost openat space")
	}
}
