#!/usr/bin/env bash
# Evolve-loop smoke assertion, run by CI and `make evolve-smoke`: with a
# fixed seed the evolutionary workload generator must (a) strictly decrease
# the untested-input-partition count from the seed baseline, (b) report a
# byte-identical serial replay (-verify exits non-zero otherwise), and
# (c) produce byte-identical corpus and snapshot artifacts across two runs
# — the determinism contract a user relies on when bisecting a corpus.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run() {
  go run ./cmd/iocov evolve -seed 7 -generations 12 -workers 4 \
    -out "$tmp/corpus$1.syz" -json "$tmp/snap$1.json" -verify | tee "$tmp/log$1"
}

echo "smoke_evolve: run 1"
run 1
echo "smoke_evolve: run 2"
run 2

first_untested=$(awk '$1 == 0 {print $2; exit}' "$tmp/log1")
last_untested=$(awk '$1 ~ /^[0-9]+$/ {u=$2} END {print u}' "$tmp/log1")
echo "smoke_evolve: untested $first_untested -> $last_untested"
if [ "$last_untested" -ge "$first_untested" ]; then
  echo "smoke_evolve: FAIL: untested count did not decrease" >&2
  exit 1
fi

cmp "$tmp/snap1.json" "$tmp/snap2.json" \
  || { echo "smoke_evolve: FAIL: snapshots differ across same-seed runs" >&2; exit 1; }
cmp "$tmp/corpus1.syz" "$tmp/corpus2.syz" \
  || { echo "smoke_evolve: FAIL: corpora differ across same-seed runs" >&2; exit 1; }
echo "smoke_evolve: OK (snapshot and corpus byte-stable across two runs)"
