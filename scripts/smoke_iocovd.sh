#!/usr/bin/env bash
# Smoke test for the iocovd daemon, run by CI and `make smoke`:
#
#   1. start iocovd with checkpointing enabled;
#   2. stream a suite run to it with `iocov run -remote`;
#   3. assert /report, /metrics, /tcd, and /healthz answer sensibly;
#   4. SIGTERM the daemon and require a graceful exit 0;
#   5. restart on the same checkpoint and require /report to be
#      byte-identical to the pre-kill snapshot.
set -euo pipefail

addr=127.0.0.1:19077
workdir=$(mktemp -d)
dpid=""
cleanup() {
    [ -n "$dpid" ] && kill "$dpid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke: building binaries"
go build -o "$workdir/iocovd" ./cmd/iocovd
go build -o "$workdir/iocov" ./cmd/iocov

ckpt="$workdir/iocovd.ckpt.json"
"$workdir/iocovd" -addr "$addr" -checkpoint "$ckpt" -checkpoint-every 2s \
    >"$workdir/iocovd.log" 2>&1 &
dpid=$!

echo "smoke: streaming crashmonkey shards to $addr"
"$workdir/iocov" run -suite crashmonkey -scale 0.05 -remote "$addr"

echo "smoke: checking endpoints"
curl -fsS "$addr/healthz" | grep -q '"status": "ok"' \
    || { echo "FAIL: /healthz not ok"; exit 1; }
curl -fsS "$addr/report" > "$workdir/prekill.json"
grep -q '"analyzed": [1-9]' "$workdir/prekill.json" \
    || { echo "FAIL: /report has no analyzed events"; exit 1; }
metrics=$(curl -fsS "$addr/metrics")
echo "$metrics" | grep -q '^iocovd_sessions_merged_total [1-9]' \
    || { echo "FAIL: no sessions merged"; exit 1; }
echo "$metrics" | grep -q '^iocovd_events_ingested_total [1-9]' \
    || { echo "FAIL: no events ingested"; exit 1; }
echo "$metrics" | grep -q 'iocovd_syscall_partition_hits_total{syscall="open"}' \
    || { echo "FAIL: no per-syscall hit counters"; exit 1; }
curl -fsS "$addr/tcd?syscall=open&arg=flags&target=100" | grep -q '"tcd":' \
    || { echo "FAIL: /tcd gave no deviation"; exit 1; }

echo "smoke: graceful shutdown"
kill -TERM "$dpid"
if ! wait "$dpid"; then
    echo "FAIL: iocovd exited non-zero on SIGTERM"
    cat "$workdir/iocovd.log"
    exit 1
fi
dpid=""
[ -s "$ckpt" ] || { echo "FAIL: no final checkpoint"; exit 1; }

echo "smoke: checkpoint-restore byte identity"
"$workdir/iocovd" -addr "$addr" -checkpoint "$ckpt" \
    >"$workdir/iocovd2.log" 2>&1 &
dpid=$!
for i in $(seq 1 50); do
    curl -fsS "$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$addr/report" > "$workdir/restored.json"
kill -TERM "$dpid"
wait "$dpid" || { echo "FAIL: restarted iocovd exited non-zero"; exit 1; }
dpid=""
cmp "$workdir/prekill.json" "$workdir/restored.json" \
    || { echo "FAIL: restored /report differs from pre-kill snapshot"; exit 1; }

echo "smoke: OK"
