#!/usr/bin/env bash
# Parallel-scaling smoke assertion, run by CI and `make smoke`: the
# RunParallel worker pool must never be a wall-clock pessimization.
# The actual timing and the CPU-aware bar (workers=4 must beat serial on
# >= 4 CPUs; at most 1.35x serial on smaller runners, where genuine
# scaling is physically impossible) live in TestParallelScalingSmoke,
# which is env-gated so ordinary `go test ./...` runs — and the race
# detector, which would skew any timing — never trip on wall-clock noise.
set -euo pipefail

cd "$(dirname "$0")/.."
echo "smoke_parallel: GOMAXPROCS-aware wall-clock check (nproc=$(nproc 2>/dev/null || echo '?'))"
IOCOV_SCALING_SMOKE=1 exec go test -count=1 -run TestParallelScalingSmoke -v ./internal/harness/
